//===- bench/serve_load.cpp - Open-loop overload study ------------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Trace-driven open-loop load generator for the serving runtime. Unlike
// serve_throughput's closed system (which measures the drain rate), this
// harness emits requests on a precomputed arrival schedule — Poisson or
// bursty — that never slows down when the service does, so it measures
// what production traffic actually experiences under overload instead of
// the coordinated-omission picture a closed loop paints.
//
// The sweep: saturation throughput is measured first (closed-loop drain),
// then offered load is swept from 0.5x to 2.0x of it under the
// DeadlineAware shed policy with a per-request deadline budget. Past
// saturation a well-behaved runtime must keep p99.9 of *served* requests
// bounded near the deadline by shedding the excess — and resolve every
// single future (served or shed; a hung future fails the run). One Block
// run at 2x shows the alternative: backpressure pushes the arrival thread
// off its schedule and offered load simply cannot be sustained.
//
// Output: human-readable table plus one JSON line per metric (schema of
// bench::jsonResult). Pass --ci for the small configuration used by the
// workflow artifact job.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "ml/Mlp.h"
#include "serve/AssessmentService.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

using namespace prom;
using namespace prom::bench;
using Clock = std::chrono::steady_clock;

namespace {

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Bench state: an MLP over 16-d features wrapped by a calibrated PROM
/// detector at the paper's 1,000-sample calibration cap, plus a fixed
/// request pool the schedules draw from round-robin.
struct LoadBenchState {
  support::Rng R{BenchSeed};
  data::Dataset Train{"serve", 6};
  data::Dataset Calib{"serve", 6};
  std::vector<data::Sample> Pool;
  ml::MlpClassifier Model;
  std::unique_ptr<PromClassifier> Prom;

  explicit LoadBenchState(size_t PoolSize) {
    for (int I = 0; I < 1200; ++I)
      Train.add(makeSample(I % 6));
    for (size_t I = 0; I < 1000; ++I)
      Calib.add(makeSample(static_cast<int>(I % 6)));
    Model.fit(Train, R);
    Prom = std::make_unique<PromClassifier>(Model);
    Prom->calibrate(Calib);
    Prom->reshard(4);
    Pool.reserve(PoolSize);
    for (size_t I = 0; I < PoolSize; ++I)
      Pool.push_back(makeSample(static_cast<int>(I % 6)));
  }

  data::Sample makeSample(int Label) {
    data::Sample S;
    for (int D = 0; D < 16; ++D)
      S.Features.push_back(R.gaussian(Label * 0.7, 1.0));
    S.Label = Label;
    return S;
  }
};

serve::ServiceConfig loadServiceConfig() {
  serve::ServiceConfig Cfg;
  Cfg.MaxBatch = 64;
  Cfg.FlushDeadline = std::chrono::microseconds(200);
  // Deliberately modest: under overload the queue bound is the knob that
  // trades latency for shed rate, and an 8k queue would hide the policy
  // behind seconds of buffering.
  Cfg.QueueCapacity = 1024;
  Cfg.NumBatchers = std::thread::hardware_concurrency() > 1 ? 2 : 1;
  return Cfg;
}

/// Saturation throughput: closed-loop drain of a staged queue (the same
/// measurement as serve_throughput's throughput run). This anchors the
/// offered-load multipliers.
double saturationRps(const LoadBenchState &S, size_t Requests, int Reps) {
  double Best = 1e300;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    serve::ServiceConfig Cfg = loadServiceConfig();
    Cfg.StartPaused = true;
    Cfg.QueueCapacity = Requests;
    serve::AssessmentService Svc(*S.Prom, Cfg);
    std::vector<std::future<Verdict>> Futures;
    Futures.reserve(Requests);
    for (size_t I = 0; I < Requests; ++I)
      Futures.push_back(Svc.submit(S.Pool[I % S.Pool.size()]));
    auto T0 = Clock::now();
    Svc.start();
    Svc.drain();
    Best = std::min(Best, secondsSince(T0));
    for (auto &Fut : Futures)
      Fut.get();
  }
  return static_cast<double>(Requests) / Best;
}

/// Precomputed open-loop arrival schedule: offsets (seconds from run
/// start) at which requests are emitted, independent of service state.
std::vector<double> makeSchedule(bool Bursty, double Rps, double DurationSec,
                                 support::Rng &R) {
  std::vector<double> Offsets;
  Offsets.reserve(static_cast<size_t>(Rps * DurationSec * 1.2) + 16);
  // Bursty: a two-state modulated Poisson process — ON periods arrive at
  // 1.75x the mean rate, OFF periods at 0.25x, exponentially distributed
  // ~25ms state dwell times. Mean offered rate stays Rps; the bursts are
  // what stress admission control.
  const double StateMeanSec = 0.025;
  bool On = true;
  double StateEnd = Bursty ? -StateMeanSec * std::log(1.0 - R.uniform()) : 0.0;
  double T = 0.0;
  while (T < DurationSec) {
    double Rate = Bursty ? (On ? 1.75 * Rps : 0.25 * Rps) : Rps;
    T += -std::log(1.0 - R.uniform()) / Rate;
    if (Bursty && T > StateEnd) {
      On = !On;
      StateEnd = T - StateMeanSec * std::log(1.0 - R.uniform());
    }
    if (T < DurationSec)
      Offsets.push_back(T);
  }
  return Offsets;
}

struct LoadRun {
  double OfferedRps = 0.0;
  double AchievedRps = 0.0; ///< Served verdicts per second of run.
  double ShedRate = 0.0;    ///< Shed / emitted.
  double P50Us = 0.0, P99Us = 0.0, P999Us = 0.0;
  bool AllResolved = false; ///< Every future got a verdict or a ShedError.
};

/// One open-loop run: emit the schedule against a live service, harvest
/// every future, report latency quantiles of the served requests from the
/// service's own histogram (recorded at fulfillment, so harvester lag
/// cannot inflate the tail).
LoadRun runOpenLoop(const LoadBenchState &S, const std::vector<double> &Offsets,
                    serve::ShedPolicy Policy,
                    std::chrono::microseconds Deadline) {
  serve::ServiceConfig Cfg = loadServiceConfig();
  Cfg.Shed = Policy;
  serve::AssessmentService Svc(*S.Prom, Cfg);

  std::vector<std::future<Verdict>> Futures;
  Futures.reserve(Offsets.size());
  auto Start = Clock::now() + std::chrono::milliseconds(2);
  for (size_t I = 0; I < Offsets.size(); ++I) {
    auto Arrival =
        Start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(Offsets[I]));
    // Open loop: sleep until the *scheduled* arrival. When the service
    // (under Block) or the host stalls us past it, we emit immediately —
    // late, but never rescheduled; the backlog is the measurement.
    if (Arrival > Clock::now() + std::chrono::microseconds(100))
      std::this_thread::sleep_until(Arrival);
    if (Policy == serve::ShedPolicy::Block)
      Futures.push_back(Svc.submit(S.Pool[I % S.Pool.size()]));
    else
      Futures.push_back(
          Svc.submitWithDeadline(S.Pool[I % S.Pool.size()], Deadline));
  }
  double EmitSec = secondsSince(Start);

  // Harvest: every future must resolve. wait_for() bounds the hang check —
  // a future neither served nor shed within the grace window is a runtime
  // bug, not load.
  size_t Served = 0, Shed = 0, Hung = 0;
  for (auto &Fut : Futures) {
    if (Fut.wait_for(std::chrono::seconds(10)) !=
        std::future_status::ready) {
      ++Hung;
      continue;
    }
    try {
      (void)Fut.get();
      ++Served;
    } catch (const serve::ShedError &) {
      ++Shed;
    }
  }
  double TotalSec = secondsSince(Start);
  Svc.drain();
  serve::ServiceStats Stats = Svc.stats();

  LoadRun Run;
  Run.OfferedRps = static_cast<double>(Offsets.size()) / EmitSec;
  Run.AchievedRps = static_cast<double>(Served) / TotalSec;
  Run.ShedRate =
      static_cast<double>(Shed) / static_cast<double>(Offsets.size());
  Run.P50Us = Stats.Latency.p50Us();
  Run.P99Us = Stats.Latency.p99Us();
  Run.P999Us = Stats.Latency.p999Us();
  Run.AllResolved = Hung == 0 && Served + Shed == Offsets.size() &&
                    Stats.Completed == Served && Stats.shedTotal() == Shed;
  return Run;
}

std::string multTag(double Mult) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%03dx", static_cast<int>(Mult * 100));
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  bool Ci = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--ci") == 0)
      Ci = true;

  const double DurationSec = Ci ? 0.3 : 1.0;
  const size_t SatRequests = Ci ? 2048 : 8192;
  const auto Deadline = std::chrono::milliseconds(20);

  LoadBenchState S(4096);

  double SatRps = saturationRps(S, SatRequests, Ci ? 2 : 3);
  std::printf("== serve_load (calib=1000, shards=4, queue=1024, "
              "deadline=%lldms, duration=%.1fs) ==\n",
              static_cast<long long>(Deadline.count()), DurationSec);
  std::printf("saturation (closed-loop drain): %9.1f req/s\n", SatRps);
  jsonResult("serve_load", "saturation_rps", SatRps);

  support::Rng ScheduleRng(BenchSeed + 1);
  const double Multipliers[] = {0.5, 0.8, 1.0, 1.5, 2.0};
  bool Healthy = true;

  for (bool Bursty : {false, true}) {
    const char *Process = Bursty ? "bursty" : "poisson";
    for (double Mult : Multipliers) {
      std::vector<double> Offsets =
          makeSchedule(Bursty, Mult * SatRps, DurationSec, ScheduleRng);
      LoadRun Run = runOpenLoop(S, Offsets, serve::ShedPolicy::DeadlineAware,
                                Deadline);
      std::printf("%-7s %.2fx: offered %9.1f req/s  achieved %9.1f req/s  "
                  "shed %5.1f%%  p50 %8.1fus  p99 %8.1fus  p99.9 %8.1fus%s\n",
                  Process, Mult, Run.OfferedRps, Run.AchievedRps,
                  100.0 * Run.ShedRate, Run.P50Us, Run.P99Us, Run.P999Us,
                  Run.AllResolved ? "" : "  [UNRESOLVED FUTURES]");
      std::string Tag = std::string(Process) + "_" + multTag(Mult);
      jsonResult("serve_load", Tag + "_offered_rps", Run.OfferedRps);
      jsonResult("serve_load", Tag + "_achieved_rps", Run.AchievedRps);
      jsonResult("serve_load", Tag + "_shed_rate", Run.ShedRate);
      jsonResult("serve_load", Tag + "_p50_us", Run.P50Us);
      jsonResult("serve_load", Tag + "_p99_us", Run.P99Us);
      jsonResult("serve_load", Tag + "_p999_us", Run.P999Us);
      Healthy = Healthy && Run.AllResolved;
      // The overload acceptance gate: at 2x saturation, served-request
      // p99.9 must stay within an order of magnitude of the deadline —
      // shedding, not unbounded queueing, absorbs the excess.
      if (Mult == 2.0) {
        double BoundUs = 10.0 * 1e3 * static_cast<double>(Deadline.count());
        if (Run.P999Us > BoundUs) {
          std::fprintf(stderr,
                       "FATAL: %s 2x p99.9 %.1fus exceeds %.1fus bound\n",
                       Process, Run.P999Us, BoundUs);
          Healthy = false;
        }
      }
    }
  }

  // The contrast run: Block at 2x. No shedding, so the queue bound turns
  // into submitter backpressure and the offered schedule cannot be held —
  // achieved rate clamps near saturation while arrival lag absorbs the
  // rest. This is the coordinated-omission trap the open-loop harness
  // exists to expose.
  {
    std::vector<double> Offsets =
        makeSchedule(false, 2.0 * SatRps, DurationSec, ScheduleRng);
    LoadRun Run = runOpenLoop(S, Offsets, serve::ShedPolicy::Block,
                              std::chrono::milliseconds(0));
    std::printf("block   2.00x: offered %9.1f req/s  achieved %9.1f req/s  "
                "shed %5.1f%%  p50 %8.1fus  p99 %8.1fus  p99.9 %8.1fus%s\n",
                Run.OfferedRps, Run.AchievedRps, 100.0 * Run.ShedRate,
                Run.P50Us, Run.P99Us, Run.P999Us,
                Run.AllResolved ? "" : "  [UNRESOLVED FUTURES]");
    jsonResult("serve_load", "block_200x_offered_rps", Run.OfferedRps);
    jsonResult("serve_load", "block_200x_achieved_rps", Run.AchievedRps);
    jsonResult("serve_load", "block_200x_p999_us", Run.P999Us);
    Healthy = Healthy && Run.AllResolved;
  }

  if (!Healthy) {
    std::fprintf(stderr, "FATAL: overload run left futures unresolved or "
                         "unbounded; see above\n");
    return 1;
  }
  std::printf("all futures resolved (served or shed) in every run\n");
  return 0;
}
