//===- bench/refresh_bench.cpp - Online refresh vs full recalibrate -----------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Latency of folding a small relabeled batch into a live calibration
// store, three ways:
//
//   full_recalibrate      - calibrate() on the union dataset: the "tear
//                           down and rebuild the detector" path the
//                           serving loop used before online refresh.
//                           Re-runs the model forward over every retained
//                           sample and refits the temperature.
//   refresh_full_rebuild  - refreshCalibration(Incremental=false): no
//                           retained-sample forwards, but a from-scratch
//                           finalize() of the union store (the reference
//                           path of the bit-identity contract).
//   refresh_incremental   - refreshCalibration(Incremental=true): the
//                           incremental CalibrationStore::refinalize()
//                           (append + sorted-index merge + shard extend).
//
// Verdict equality across all three is asserted before timing, so every
// row is a pure cost comparison. The bounded variant repeats the
// incremental refresh with MaxCalibEntries pinned to the store size —
// the steady state of a continuously refreshed server, where every
// refresh also evicts oldest-first.
//
// Output: human-readable rows plus JSON result lines (bench::jsonResult
// schema); the CI workflow archives them as BENCH_refresh_bench.json.
// Pass --ci for the smaller repetition count used there.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "ml/Mlp.h"

#include <chrono>
#include <cstdio>
#include <cstring>

using namespace prom;
using namespace prom::bench;
using Clock = std::chrono::steady_clock;

namespace {

double msSince(Clock::time_point Start) {
  return 1e3 * std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Bench state: an MLP over 16-d features, a 10k-sample calibration set,
/// and a stream of 256-sample relabeled refresh batches.
struct RefreshBenchState {
  support::Rng R{BenchSeed};
  data::Dataset Train{"refresh", 6};
  data::Dataset Calib{"refresh", 6};
  data::Dataset Refresh{"refresh", 6};
  data::Dataset Probe{"refresh", 6};
  ml::MlpClassifier Model;

  RefreshBenchState(size_t CalibSize, size_t RefreshSize) {
    for (int I = 0; I < 1200; ++I)
      Train.add(makeSample(I % 6));
    for (size_t I = 0; I < CalibSize; ++I)
      Calib.add(makeSample(static_cast<int>(I % 6)));
    for (size_t I = 0; I < RefreshSize; ++I)
      Refresh.add(makeSample(static_cast<int>(I % 6)));
    for (int I = 0; I < 128; ++I)
      Probe.add(makeSample(I % 6));
    Model.fit(Train, R);
  }

  data::Sample makeSample(int Label) {
    data::Sample S;
    for (int D = 0; D < 16; ++D)
      S.Features.push_back(R.gaussian(Label * 0.7, 1.0));
    S.Label = Label;
    return S;
  }

  /// The union dataset the full recalibrate consumes.
  data::Dataset unionSet() const {
    data::Dataset U("refresh", 6);
    U.reserve(Calib.size() + Refresh.size());
    for (const data::Sample &S : Calib.samples())
      U.add(S);
    for (const data::Sample &S : Refresh.samples())
      U.add(S);
    return U;
  }
};

bool sameVerdicts(const std::vector<Verdict> &A,
                  const std::vector<Verdict> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I].Predicted != B[I].Predicted || A[I].Drifted != B[I].Drifted ||
        A[I].VotesToFlag != B[I].VotesToFlag)
      return false;
    for (size_t E = 0; E < A[I].Experts.size(); ++E)
      if (A[I].Experts[E].Credibility != B[I].Experts[E].Credibility ||
          A[I].Experts[E].Confidence != B[I].Experts[E].Confidence)
        return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Ci = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--ci") == 0)
      Ci = true;

  const size_t CalibSize = 10000; // The acceptance scale: 10k-entry store.
  const size_t RefreshSize = 256; // One relabeled refresh batch.
  const int Reps = Ci ? 3 : 5;

  RefreshBenchState S(CalibSize, RefreshSize);
  PromConfig Cfg;
  Cfg.NumShards = 4;
  PromClassifier Prom(S.Model, Cfg);
  Prom.calibrate(S.Calib);

  // Stage the calibrated baseline once; each timed rep restores it so
  // every path starts from the identical 10k-entry store.
  const char *Baseline = "refresh_bench_baseline.promsnap";
  if (!Prom.saveSnapshot(Baseline)) {
    std::fprintf(stderr, "FATAL: cannot stage baseline snapshot\n");
    return 1;
  }
  auto Restore = [&] {
    if (!Prom.loadSnapshot(Baseline)) {
      std::fprintf(stderr, "FATAL: baseline restore failed\n");
      std::exit(1);
    }
  };

  // Correctness gate: all three refresh paths must agree bit for bit.
  Prom.refreshCalibration(S.Refresh, /*Incremental=*/true);
  std::vector<Verdict> VInc = Prom.assessBatch(S.Probe);
  Restore();
  Prom.refreshCalibration(S.Refresh, /*Incremental=*/false);
  std::vector<Verdict> VFull = Prom.assessBatch(S.Probe);
  if (!sameVerdicts(VInc, VFull)) {
    std::fprintf(stderr,
                 "FATAL: incremental/full refresh divergence, not timing\n");
    return 1;
  }

  std::printf("== refresh_bench (calib=%zu, refresh=%zu, shards=%zu) ==\n",
              CalibSize, RefreshSize, Prom.numShards());

  double FullRecal = 1e300, FullRebuild = 1e300, Incremental = 1e300,
         BoundedIncremental = 1e300;
  data::Dataset Union = S.unionSet();
  for (int Rep = 0; Rep < Reps; ++Rep) {
    Restore();
    auto T0 = Clock::now();
    Prom.refreshCalibration(S.Refresh, /*Incremental=*/true);
    Incremental = std::min(Incremental, msSince(T0));

    Restore();
    T0 = Clock::now();
    Prom.refreshCalibration(S.Refresh, /*Incremental=*/false);
    FullRebuild = std::min(FullRebuild, msSince(T0));

    Restore();
    T0 = Clock::now();
    Prom.calibrate(Union);
    FullRecal = std::min(FullRecal, msSince(T0));

    // Steady state of a bounded store: the refresh also evicts 256
    // oldest entries to hold the size at 10k.
    Restore();
    Prom.config().MaxCalibEntries = CalibSize;
    T0 = Clock::now();
    Prom.refreshCalibration(S.Refresh, /*Incremental=*/true);
    BoundedIncremental = std::min(BoundedIncremental, msSince(T0));
    Prom.config().MaxCalibEntries = 0;
  }
  std::remove(Baseline);

  std::printf("full recalibrate (union calibrate)   : %9.2f ms\n", FullRecal);
  std::printf("refresh, full store rebuild          : %9.2f ms\n",
              FullRebuild);
  std::printf("refresh, incremental refinalize      : %9.2f ms\n",
              Incremental);
  std::printf("refresh, incremental + eviction bound: %9.2f ms\n",
              BoundedIncremental);
  std::printf("incremental vs full recalibrate      : %9.2fx\n",
              FullRecal / Incremental);
  std::printf("incremental vs full store rebuild    : %9.2fx\n",
              FullRebuild / Incremental);

  jsonResult("refresh_bench", "full_recalibrate_ms", FullRecal);
  jsonResult("refresh_bench", "refresh_full_rebuild_ms", FullRebuild);
  jsonResult("refresh_bench", "refresh_incremental_ms", Incremental);
  jsonResult("refresh_bench", "refresh_incremental_bounded_ms",
             BoundedIncremental);
  jsonResult("refresh_bench", "incremental_vs_full_recalibrate_speedup",
             FullRecal / Incremental);
  jsonResult("refresh_bench", "incremental_vs_full_rebuild_speedup",
             FullRebuild / Incremental);
  return 0;
}
