//===- bench/BenchCommon.h - Shared bench-harness plumbing --------*- C++ -*-===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Task construction at bench scale and the sweep helpers the per-figure
/// binaries share. Every binary prints the rows of its paper table/figure
/// and mirrors them to <benchname>.csv in the working directory.
///
//===----------------------------------------------------------------------===//

#ifndef PROM_BENCH_BENCHCOMMON_H
#define PROM_BENCH_BENCHCOMMON_H

#include "eval/Runner.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "tasks/DnnCodeGeneration.h"
#include "tasks/HeterogeneousMapping.h"
#include "tasks/LoopVectorization.h"
#include "tasks/ThreadCoarsening.h"
#include "tasks/VulnerabilityDetection.h"

#include <cstdio>
#include <memory>
#include <string>

namespace prom {
namespace bench {

/// Fixed seed so every bench replays identically.
constexpr uint64_t BenchSeed = 20250301; // CGO'25 presentation date.

/// Builds a case study at the scale used throughout the bench harness
/// (scaled relative to the paper corpora so a full sweep stays laptop-
/// sized; DESIGN.md documents the scaling).
inline std::unique_ptr<tasks::CaseStudy> makeTask(eval::TaskId Task) {
  switch (Task) {
  case eval::TaskId::ThreadCoarsening:
    return std::make_unique<tasks::ThreadCoarsening>(12);
  case eval::TaskId::LoopVectorization:
    return std::make_unique<tasks::LoopVectorization>(100);
  case eval::TaskId::HeterogeneousMapping:
    return std::make_unique<tasks::HeterogeneousMapping>(97);
  case eval::TaskId::VulnerabilityDetection:
    return std::make_unique<tasks::VulnerabilityDetection>(220);
  case eval::TaskId::DnnCodeGeneration:
    return std::make_unique<tasks::DnnCodeGeneration>(500);
  }
  return nullptr;
}

/// The classification case studies of Figures 7-11.
inline std::vector<eval::TaskId> classificationTasks() {
  return {eval::TaskId::ThreadCoarsening, eval::TaskId::LoopVectorization,
          eval::TaskId::HeterogeneousMapping,
          eval::TaskId::VulnerabilityDetection};
}

/// Representative (fast) underlying model per task, used by the benches
/// that sweep detectors rather than models.
inline std::string representativeModel(eval::TaskId Task) {
  switch (Task) {
  case eval::TaskId::ThreadCoarsening:
    return "IR2Vec";
  case eval::TaskId::LoopVectorization:
    return "K.Stock";
  case eval::TaskId::HeterogeneousMapping:
    return "IR2Vec";
  case eval::TaskId::VulnerabilityDetection:
    return "CodeXGLUE";
  case eval::TaskId::DnnCodeGeneration:
    return "TLP";
  }
  return "";
}

/// Short "C1".."C5" tag.
inline std::string taskTag(eval::TaskId Task) {
  return "C" + std::to_string(static_cast<int>(Task));
}

/// Caps the number of drift splits swept per task (the leave-suite-out
/// tasks have one split per suite; the first \p MaxSplits cover every
/// characteristic regime at bench scale).
inline std::vector<tasks::TaskSplit>
driftSplitsFor(tasks::CaseStudy &Task, const data::Dataset &Data,
               support::Rng &R, size_t MaxSplits = 3) {
  std::vector<tasks::TaskSplit> Splits = Task.driftSplits(Data, R);
  if (Splits.size() > MaxSplits)
    Splits.resize(MaxSplits);
  return Splits;
}

/// Emits one machine-readable result line (same schema as
/// support::Table::writeJsonLines) for ad-hoc metrics that do not come out
/// of a table, e.g. throughput numbers.
inline void jsonResult(const std::string &Bench, const std::string &Metric,
                       double Value) {
  std::printf("{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %g}\n",
              Bench.c_str(), Metric.c_str(), Value);
}

/// "min/q25/med/q75/max" violin summary string.
inline std::string violin(const std::vector<double> &Values) {
  if (Values.empty())
    return "-";
  support::Summary S = support::summarize(Values);
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%.2f/%.2f/%.2f/%.2f/%.2f", S.Min, S.Q25,
                S.Median, S.Q75, S.Max);
  return Buf;
}

} // namespace bench
} // namespace prom

#endif // PROM_BENCH_BENCHCOMMON_H
