//===- bench/table3_dnn_codegen.cpp - Table 3 ---------------------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 3: the DNN code-generation case study. The TLP-style cost model is
// trained on BERT-base schedules and drives the guided schedule search on
// each network variant; performance-to-oracle is the ratio of the best
// found throughput to the exhaustive optimum. "Native deployment" uses the
// base-trained model as-is; "PROM-assisted" first runs a PROM detection +
// profiling round (<= 5% of the variant's candidate schedules profiled and
// fed back into the model, the paper's online retraining during search).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "data/Scaler.h"

#include <cstdio>

using namespace prom;
using namespace prom::bench;
using tasks::DnnCodeGeneration;

int main() {
  auto Task = std::make_unique<DnnCodeGeneration>(500);
  support::Rng R(BenchSeed + 5);
  data::Dataset Data = Task->generate(R);

  // Design-time: train on BERT-base (80%), validate in-distribution.
  auto Design = Task->designSplits(Data, R);
  eval::PreparedSplit BasePrep = eval::prepare(Design[0], R);
  auto BaseModel = eval::makeTlpRegressor();
  std::printf("training TLP cost model on BERT-base...\n");
  BaseModel->fit(BasePrep.Train, R);

  support::Table T({"network", "native deploy", "PROM-assisted",
                    "flagged", "profiled"});

  // BERT-base row: the in-distribution search quality (paper: 0.845).
  {
    support::Rng SearchR(BenchSeed);
    DnnCodeGeneration::SearchResult Res =
        DnnCodeGeneration::guidedSearch(*BaseModel, 0, SearchR);
    T.addRow({"BERT-base", support::Table::num(Res.PerfToOracle), "-", "-",
              "-"});
  }

  auto Drift = Task->driftSplits(Data, R);
  for (size_t Idx = 0; Idx < Drift.size(); ++Idx) {
    int NetworkIdx = static_cast<int>(Idx) + 1;
    const char *Name =
        DnnCodeGeneration::variants()[static_cast<size_t>(NetworkIdx)].Name;
    std::printf("[table3] %s...\n", Name);

    // Native deployment: base-trained model searches the variant.
    auto NativeModel = eval::makeTlpRegressor();
    support::Rng FitR(BenchSeed + 11);
    NativeModel->fit(BasePrep.Train, FitR);
    support::Rng SearchR(BenchSeed + Idx);
    DnnCodeGeneration::SearchResult Native =
        DnnCodeGeneration::guidedSearch(*NativeModel, NetworkIdx, SearchR);

    // PROM-assisted: detect drifting cost predictions on the variant's
    // schedule corpus, profile <= 5% of them, update the model online,
    // then search with the updated model.
    eval::PreparedSplit Prep = eval::prepare(Drift[Idx], R);
    auto PromModel = eval::makeTlpRegressor();
    support::Rng FitR2(BenchSeed + 11);
    PromModel->fit(Prep.Train, FitR2);
    IncrementalConfig IlCfg;
    IlCfg.RelabelBudget = 0.05;
    IlCfg.OversampleFactor = 6;
    PromConfig RegCfg;
    RegCfg.MinVotesToFlag = 1; // Any-expert voting for regression.
    RegressionIncrementalOutcome Out = runIncrementalLearningRegression(
        *PromModel, Prep.Train, Prep.Calib, Prep.Test, RegCfg, IlCfg,
        R);
    support::Rng SearchR2(BenchSeed + Idx);
    DnnCodeGeneration::SearchResult Assisted =
        DnnCodeGeneration::guidedSearch(*PromModel, NetworkIdx, SearchR2);

    T.addRow({Name, support::Table::num(Native.PerfToOracle),
              support::Table::num(Assisted.PerfToOracle),
              std::to_string(Out.NumFlagged),
              std::to_string(Out.NumRelabeled)});
  }

  T.print("Table 3: C5 performance-to-oracle, native vs PROM-assisted");
  T.writeCsv("table3_dnn_codegen.csv");
  T.writeJsonLines("table3_dnn_codegen");
  std::printf("\nPaper: native 0.845 (base) dropping to 0.224-0.703 on "
              "variants; PROM-assisted recovers to ~0.79-0.81.\n");
  return 0;
}
