//===- bench/fig01_motivation.cpp - Figure 1(a) -------------------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 1(a): the motivation study. A Vulde-style Bi-LSTM bug detector is
// trained on vulnerability samples collected 2012-2014 and then evaluated
// on successive later time windows. The paper reports the F1 score decaying
// from >0.8 (in-window) to <0.3 (2022-23) as code patterns evolve.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "data/Scaler.h"
#include "data/Split.h"

#include <cstdio>

using namespace prom;
using namespace prom::bench;

int main() {
  support::Rng R(BenchSeed);
  auto Task = makeTask(eval::TaskId::VulnerabilityDetection);
  data::Dataset Data = Task->generate(R);

  // Train on 2012-2014 (holding out 15% in-window for the first reading).
  data::Dataset Window0 = Data.byYearRange(2012, 2014);
  data::TrainTest InWindow = data::stratifiedSplit(Window0, 0.15, R);

  data::StandardScaler Scaler;
  Scaler.fit(InWindow.Train);
  data::Dataset Train = InWindow.Train;
  Scaler.transformInPlace(Train);

  auto Model = eval::makeClassifier(eval::TaskId::VulnerabilityDetection,
                                    "Vulde");
  std::printf("training Vulde (Bi-LSTM) on 2012-2014 (%zu samples)...\n",
              Train.size());
  Model->fit(Train, R);

  struct Window {
    const char *Name;
    int From, To;
  };
  const Window Windows[] = {{"12-14 (train window)", 0, 0},
                            {"15-17", 2015, 2017},
                            {"18-19", 2018, 2019},
                            {"20-21", 2020, 2021},
                            {"22-23", 2022, 2023}};

  support::Table T({"test window", "F1 score", "accuracy", "samples"});
  for (const Window &W : Windows) {
    data::Dataset Test = W.From == 0
                             ? InWindow.Test
                             : Data.byYearRange(W.From, W.To);
    Scaler.transformInPlace(Test);
    eval::NativeReport Rep = eval::evaluateNative(*Model, Test);
    T.addRow({W.Name, support::Table::num(Rep.MacroF1),
              support::Table::num(Rep.Accuracy),
              std::to_string(Test.size())});
  }
  T.print("Figure 1(a): Vulde F1 decays on later time windows");
  T.writeCsv("fig01_motivation.csv");
  T.writeJsonLines("fig01_motivation");

  std::printf("\nPaper shape: F1 > 0.8 in-window, dropping below ~0.3 on "
              "the latest windows.\n");
  return 0;
}
