//===- bench/serve_throughput.cpp - Async serving runtime study ---------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Serving-runtime benchmark: requests/s and p50/p99 request latency of the
// AssessmentService (bounded queue + micro-batcher + futures) against the
// direct synchronous assessBatch loop, swept over calibration-store shard
// counts and micro-batcher flush deadlines.
//
// The direct baseline models a caller that packs arriving samples into
// batch-64 Datasets itself and blocks on each assessBatch call; the
// service receives the same stream as individual submit() requests.
// Correctness is asserted before timing (served verdicts must be
// bit-identical to direct ones), so every row is a pure scheduling
// comparison.
//
// Output: human-readable table plus one JSON result line per metric
// (schema of bench::jsonResult). Pass --ci for the small configuration
// used by the workflow artifact job.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "ml/Mlp.h"
#include "serve/AssessmentService.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace prom;
using namespace prom::bench;
using Clock = std::chrono::steady_clock;

namespace {

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

double percentile(std::vector<double> Values, double P) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  double Pos = P * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

/// Bench state: an MLP over 16-d features wrapped by a calibrated PROM
/// detector, plus a fixed deployment stream.
struct ServeBenchState {
  support::Rng R{BenchSeed};
  data::Dataset Train{"serve", 6};
  data::Dataset Calib{"serve", 6};
  std::vector<data::Sample> Stream;
  ml::MlpClassifier Model;
  std::unique_ptr<PromClassifier> Prom;

  ServeBenchState(size_t CalibSize, size_t StreamSize) {
    for (int I = 0; I < 1200; ++I)
      Train.add(makeSample(I % 6));
    for (size_t I = 0; I < CalibSize; ++I)
      Calib.add(makeSample(static_cast<int>(I % 6)));
    Model.fit(Train, R);
    Prom = std::make_unique<PromClassifier>(Model);
    Prom->calibrate(Calib);
    Stream.reserve(StreamSize);
    for (size_t I = 0; I < StreamSize; ++I)
      Stream.push_back(makeSample(static_cast<int>(I % 6)));
  }

  data::Sample makeSample(int Label) {
    data::Sample S;
    for (int D = 0; D < 16; ++D)
      S.Features.push_back(R.gaussian(Label * 0.7, 1.0));
    S.Label = Label;
    return S;
  }
};

/// One pass of the direct synchronous loop: pack 64 samples, assessBatch,
/// repeat over the stream. Returns elapsed seconds.
double directPassSec(const ServeBenchState &S, size_t Batch) {
  size_t Rejected = 0;
  auto T0 = Clock::now();
  for (size_t Begin = 0; Begin < S.Stream.size(); Begin += Batch) {
    size_t End = std::min(S.Stream.size(), Begin + Batch);
    data::Dataset Work;
    Work.reserve(End - Begin);
    for (size_t I = Begin; I < End; ++I)
      Work.add(S.Stream[I]);
    std::vector<Verdict> Verdicts = S.Prom->assessBatch(Work);
    for (const Verdict &V : Verdicts)
      Rejected += V.Drifted ? 1 : 0;
  }
  (void)Rejected;
  return secondsSince(T0);
}

double directRps(const ServeBenchState &S, size_t Batch, int Reps) {
  double Best = 1e300;
  for (int Rep = 0; Rep < Reps; ++Rep)
    Best = std::min(Best, directPassSec(S, Batch));
  return static_cast<double>(S.Stream.size()) / Best;
}

struct ServiceRun {
  double Rps = 0.0;
  double P50Us = 0.0;
  double P99Us = 0.0;
  double MeanBatch = 0.0;
};

serve::ServiceConfig serviceConfig(size_t Batch,
                                   std::chrono::microseconds Deadline) {
  serve::ServiceConfig Cfg;
  Cfg.MaxBatch = Batch;
  Cfg.FlushDeadline = Deadline;
  Cfg.QueueCapacity = 8192;
  // A second batcher only helps when a core is free to overlap batch
  // assembly with engine work.
  Cfg.NumBatchers = std::thread::hardware_concurrency() > 1 ? 2 : 1;
  return Cfg;
}

/// Throughput run (closed system, drain rate): the whole stream is staged
/// into a paused service's queue, then the batchers start and the clock
/// runs until the last verdict lands. This measures the serving runtime's
/// steady-state processing rate — pops, batch assembly, engine, promise
/// fulfillment — without conflating it with the submitters' own enqueue
/// cost, which the latency run below captures per request.
double servicePassSec(const ServeBenchState &S, size_t Batch,
                      std::chrono::microseconds Deadline,
                      double *MeanBatchOut = nullptr) {
  serve::ServiceConfig Cfg = serviceConfig(Batch, Deadline);
  Cfg.StartPaused = true;
  serve::AssessmentService Svc(*S.Prom, Cfg);

  std::vector<std::future<Verdict>> Futures;
  Futures.reserve(S.Stream.size());
  for (const data::Sample &Smp : S.Stream)
    Futures.push_back(Svc.submit(Smp));

  auto T0 = Clock::now();
  Svc.start();
  // drain() returns only when every batch has been answered; waiting on
  // the last future instead would under-count with two batchers (the
  // final short batch can resolve while an earlier full one is still in
  // flight).
  Svc.drain();
  double Sec = secondsSince(T0);

  for (auto &Fut : Futures)
    Fut.get();
  if (MeanBatchOut)
    *MeanBatchOut = Svc.stats().meanBatchSize();
  return Sec;
}

ServiceRun serviceThroughput(const ServeBenchState &S, size_t Batch,
                             std::chrono::microseconds Deadline, int Reps) {
  ServiceRun Best;
  double BestSec = 1e300;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    double MeanBatch = 0.0;
    double Sec = servicePassSec(S, Batch, Deadline, &MeanBatch);
    if (Sec < BestSec) {
      BestSec = Sec;
      Best.Rps = static_cast<double>(S.Stream.size()) / Sec;
      Best.MeanBatch = MeanBatch;
    }
  }
  return Best;
}

/// Latency run (open submission): a live service, per-request
/// submit-to-resolution time under a saturating submitter.
ServiceRun serviceLatency(const ServeBenchState &S, size_t Batch,
                          std::chrono::microseconds Deadline) {
  serve::AssessmentService Svc(*S.Prom, serviceConfig(Batch, Deadline));

  std::vector<Clock::time_point> SubmitAt(S.Stream.size());
  std::vector<std::future<Verdict>> Futures;
  Futures.reserve(S.Stream.size());
  for (size_t I = 0; I < S.Stream.size(); ++I) {
    SubmitAt[I] = Clock::now();
    Futures.push_back(Svc.submit(S.Stream[I]));
  }
  std::vector<double> LatencyUs(S.Stream.size());
  for (size_t I = 0; I < S.Stream.size(); ++I) {
    Futures[I].get();
    LatencyUs[I] =
        1e6 *
        std::chrono::duration<double>(Clock::now() - SubmitAt[I]).count();
  }
  Svc.drain();

  ServiceRun Run;
  Run.P50Us = percentile(LatencyUs, 0.50);
  Run.P99Us = percentile(LatencyUs, 0.99);
  Run.MeanBatch = Svc.stats().meanBatchSize();
  return Run;
}

/// Bit-identical correctness gate: a timing comparison between divergent
/// paths would be meaningless.
bool servedMatchesDirect(const ServeBenchState &S) {
  data::Dataset Probe;
  size_t N = std::min<size_t>(S.Stream.size(), 256);
  Probe.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Probe.add(S.Stream[I]);
  std::vector<Verdict> Direct = S.Prom->assessBatch(Probe);

  serve::AssessmentService Svc(*S.Prom);
  std::vector<std::future<Verdict>> Futures;
  for (size_t I = 0; I < N; ++I)
    Futures.push_back(Svc.submit(S.Stream[I]));
  for (size_t I = 0; I < N; ++I) {
    Verdict V = Futures[I].get();
    if (V.Predicted != Direct[I].Predicted ||
        V.Drifted != Direct[I].Drifted ||
        V.VotesToFlag != Direct[I].VotesToFlag)
      return false;
    for (size_t E = 0; E < V.Experts.size(); ++E)
      if (V.Experts[E].Credibility != Direct[I].Experts[E].Credibility ||
          V.Experts[E].Confidence != Direct[I].Experts[E].Confidence)
        return false;
  }
  return true;
}

std::string shardTag(size_t K) { return "shard" + std::to_string(K); }

} // namespace

int main(int argc, char **argv) {
  bool Ci = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--ci") == 0)
      Ci = true;

  // The calibration size stays at the paper's 1,000 cap even under --ci:
  // it sets the per-sample assessment cost, and shrinking it would turn
  // the comparison into a queue-overhead microbenchmark. --ci only trims
  // the stream length and repetitions.
  const size_t CalibSize = 1000;
  const size_t StreamSize = Ci ? 1024 : 4096;
  const size_t Batch = 64;
  const int Reps = 3;

  ServeBenchState S(CalibSize, StreamSize);
  if (!servedMatchesDirect(S)) {
    std::fprintf(stderr,
                 "FATAL: service/direct verdict divergence, not timing\n");
    return 1;
  }

  std::printf("== serve_throughput (calib=%zu, stream=%zu, batch=%zu) ==\n",
              CalibSize, StreamSize, Batch);

  // Direct synchronous baseline on the unsharded store.
  S.Prom->reshard(1);
  double DirectShard1 = directRps(S, Batch, Reps);
  std::printf("direct assessBatch, 1 shard  : %9.1f req/s\n", DirectShard1);
  jsonResult("serve_throughput", "direct_assessbatch_shard1_rps",
             DirectShard1);

  const size_t ShardCounts[] = {1, 4};
  const std::chrono::microseconds Deadlines[] = {
      std::chrono::microseconds(200), std::chrono::microseconds(1000)};

  double ServiceShard4Batch64 = 0.0;
  for (size_t K : ShardCounts) {
    S.Prom->reshard(K);
    for (auto Deadline : Deadlines) {
      ServiceRun Thru = serviceThroughput(S, Batch, Deadline, Reps);
      ServiceRun Lat = serviceLatency(S, Batch, Deadline);
      std::printf("service %zu shard%s, deadline %4lldus: %9.1f req/s   "
                  "p50 %7.1fus  p99 %7.1fus  (mean batch %.1f)\n",
                  K, K == 1 ? " " : "s",
                  static_cast<long long>(Deadline.count()), Thru.Rps,
                  Lat.P50Us, Lat.P99Us, Thru.MeanBatch);
      std::string Tag = shardTag(K) + "_deadline" +
                        std::to_string(Deadline.count()) + "us_batch" +
                        std::to_string(Batch);
      jsonResult("serve_throughput", "service_" + Tag + "_rps", Thru.Rps);
      jsonResult("serve_throughput", "service_" + Tag + "_p50_us",
                 Lat.P50Us);
      jsonResult("serve_throughput", "service_" + Tag + "_p99_us",
                 Lat.P99Us);
      if (K == 4 && Deadline == Deadlines[0])
        ServiceShard4Batch64 = Thru.Rps;
    }
  }
  (void)ServiceShard4Batch64;

  // The acceptance headline: the async runtime at batch 64 over the
  // 4-shard store must not serve slower than the synchronous direct loop.
  // The two sides are measured interleaved, best-of-N each, so a slow
  // scheduling window on a busy host penalizes both alike instead of
  // whichever side it happened to land on.
  const int HeadToHeadReps = Ci ? 5 : 7;
  double DirectBest = 1e300, ServiceBest = 1e300;
  // One untimed warm-up of each side, then alternating measurement order
  // per round, so neither allocator warm-up nor drift biases a side.
  S.Prom->reshard(1);
  directPassSec(S, Batch);
  S.Prom->reshard(4);
  servicePassSec(S, Batch, Deadlines[0]);
  for (int Rep = 0; Rep < HeadToHeadReps; ++Rep) {
    for (int Side = 0; Side < 2; ++Side) {
      if ((Rep + Side) % 2 == 0) {
        S.Prom->reshard(1);
        DirectBest = std::min(DirectBest, directPassSec(S, Batch));
      } else {
        S.Prom->reshard(4);
        ServiceBest =
            std::min(ServiceBest, servicePassSec(S, Batch, Deadlines[0]));
      }
    }
  }
  double DirectHead = static_cast<double>(S.Stream.size()) / DirectBest;
  double ServiceHead = static_cast<double>(S.Stream.size()) / ServiceBest;
  std::printf("head-to-head: direct(1 shard) %9.1f req/s vs "
              "service(4 shards, batch 64) %9.1f req/s -> %.2fx\n",
              DirectHead, ServiceHead, ServiceHead / DirectHead);
  jsonResult("serve_throughput", "direct_assessbatch_shard1_headtohead_rps",
             DirectHead);
  jsonResult("serve_throughput", "service_shard4_batch64_rps", ServiceHead);
  jsonResult("serve_throughput", "service_shard4_vs_direct_shard1_speedup",
             ServiceHead / DirectHead);
  return 0;
}
