//===- bench/fig11_nonconformity.cpp - Figure 11 ------------------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 11: each default nonconformity function (LAC, TopK, APS, RAPS) as
// a single-expert detector vs the full PROM committee, per case study.
// The paper's point: no single function wins everywhere; the ensemble
// matches or beats the best individual function on every task.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include <cstdio>
#include <memory>

using namespace prom;
using namespace prom::bench;

namespace {

/// Single-expert committee around scorer \p Which (0..3), or the full
/// default committee when Which < 0; \p Tuned carries the grid-searched
/// thresholds shared by every variant for a fair comparison.
std::unique_ptr<PromClassifier> makeVariant(const ml::Classifier &Model,
                                            int Which, PromConfig Tuned) {
  if (Which < 0)
    return std::make_unique<PromClassifier>(Model, Tuned);
  auto All = defaultClassificationScorers();
  std::vector<std::unique_ptr<ClassificationScorer>> One;
  One.push_back(std::move(All[static_cast<size_t>(Which)]));
  Tuned.MinVotesToFlag = 1;
  return std::make_unique<PromClassifier>(Model, std::move(One), Tuned);
}

} // namespace

int main() {
  const char *Variants[] = {"LAC", "TopK", "APS", "RAPS", "PROM"};
  support::Table T({"case", "model", "detector", "accuracy", "precision",
                    "recall", "F1"});

  for (eval::TaskId Id : classificationTasks()) {
    auto Task = makeTask(Id);
    support::Rng R(BenchSeed + static_cast<uint64_t>(Id));
    data::Dataset Data = Task->generate(R);
    auto Drift = driftSplitsFor(*Task, Data, R, /*MaxSplits=*/2);
    std::string ModelName = representativeModel(Id);
    std::printf("[fig11] %s / %s...\n", taskTag(Id).c_str(),
                ModelName.c_str());

    // Train once per split; sweep the five detector variants on top.
    DetectionCounts Counts[5];
    for (size_t SplitIdx = 0; SplitIdx < Drift.size(); ++SplitIdx) {
      support::Rng RunR(BenchSeed + SplitIdx);
      eval::PreparedSplit Prep = eval::prepare(Drift[SplitIdx], RunR);
      auto Model = eval::makeClassifier(Id, ModelName);
      Model->fit(Prep.Train, RunR);
      bool HasCosts = !Prep.Test[0].OptionCosts.empty();
      MispredicateFn Wrong = eval::mispredicateFor(HasCosts);
      PromConfig Tuned = gridSearch(*Model, Prep.Calib, GridSearchSpace(),
                                    PromConfig(), RunR, 1, Wrong)
                             .Best;

      for (int Variant = 0; Variant < 5; ++Variant) {
        auto Prom = makeVariant(*Model, Variant == 4 ? -1 : Variant, Tuned);
        Prom->calibrate(Prep.Calib);
        for (const data::Sample &S : Prep.Test.samples()) {
          Verdict V = Prom->assess(S);
          Counts[Variant].record(Wrong(S, V.Predicted), V.Drifted);
        }
      }
    }
    for (int Variant = 0; Variant < 5; ++Variant)
      T.addRow({taskTag(Id), ModelName, Variants[Variant],
                support::Table::num(Counts[Variant].accuracy()),
                support::Table::num(Counts[Variant].precision()),
                support::Table::num(Counts[Variant].recall()),
                support::Table::num(Counts[Variant].f1())});
  }

  T.print("Figure 11: individual nonconformity functions vs the PROM "
          "committee");
  T.writeCsv("fig11_nonconformity.csv");
  T.writeJsonLines("fig11_nonconformity");
  std::printf("\nPaper shape: no single function dominates across tasks; "
              "the committee is at or near the best on each.\n");
  return 0;
}
