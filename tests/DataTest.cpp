//===- tests/DataTest.cpp - data layer tests ----------------------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "data/Dataset.h"
#include "data/Scaler.h"
#include "data/Split.h"
#include "support/Rng.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <set>

using namespace prom;
using namespace prom::data;

namespace {

Dataset groupedDataset() {
  Dataset Data("grouped", 2);
  for (int G = 0; G < 4; ++G)
    for (int I = 0; I < 10; ++I) {
      Sample S;
      S.Features = {static_cast<double>(G), static_cast<double>(I)};
      S.Label = I % 2;
      S.Group = G;
      S.Year = 2012 + G;
      S.Id = static_cast<uint64_t>(G * 10 + I);
      Data.add(std::move(S));
    }
  return Data;
}

} // namespace

//===----------------------------------------------------------------------===//
// Sample
//===----------------------------------------------------------------------===//

TEST(SampleTest, PerfToOracleBestOptionIsOne) {
  Sample S;
  S.OptionCosts = {4.0, 2.0, 8.0};
  EXPECT_DOUBLE_EQ(S.perfToOracle(1), 1.0);
  EXPECT_DOUBLE_EQ(S.perfToOracle(0), 0.5);
  EXPECT_DOUBLE_EQ(S.perfToOracle(2), 0.25);
}

TEST(SampleTest, PerfToOracleBounded) {
  Sample S;
  S.OptionCosts = {1.0, 3.0, 9.0};
  for (int C = 0; C < 3; ++C) {
    EXPECT_GT(S.perfToOracle(C), 0.0);
    EXPECT_LE(S.perfToOracle(C), 1.0);
  }
}

//===----------------------------------------------------------------------===//
// Dataset
//===----------------------------------------------------------------------===//

TEST(DatasetTest, MetadataAndSize) {
  Dataset Data = groupedDataset();
  EXPECT_EQ(Data.size(), 40u);
  EXPECT_EQ(Data.numClasses(), 2);
  EXPECT_EQ(Data.featureDim(), 2u);
}

TEST(DatasetTest, SubsetPreservesSamplesAndMetadata) {
  Dataset Data = groupedDataset();
  Dataset Sub = Data.subset({0, 5, 39});
  EXPECT_EQ(Sub.size(), 3u);
  EXPECT_EQ(Sub.numClasses(), 2);
  EXPECT_EQ(Sub[2].Id, 39u);
}

TEST(DatasetTest, ByGroupsAndExcluding) {
  Dataset Data = groupedDataset();
  Dataset G1 = Data.byGroups({1});
  EXPECT_EQ(G1.size(), 10u);
  for (const Sample &S : G1.samples())
    EXPECT_EQ(S.Group, 1);
  Dataset Rest = Data.excludingGroups({1});
  EXPECT_EQ(Rest.size(), 30u);
  for (const Sample &S : Rest.samples())
    EXPECT_NE(S.Group, 1);
}

TEST(DatasetTest, ByYearRangeInclusive) {
  Dataset Data = groupedDataset();
  Dataset Y = Data.byYearRange(2013, 2014);
  EXPECT_EQ(Y.size(), 20u);
  for (const Sample &S : Y.samples()) {
    EXPECT_GE(S.Year, 2013);
    EXPECT_LE(S.Year, 2014);
  }
}

TEST(DatasetTest, GroupIdsSortedUnique) {
  Dataset Data = groupedDataset();
  std::vector<int> Ids = Data.groupIds();
  ASSERT_EQ(Ids.size(), 4u);
  EXPECT_EQ(Ids.front(), 0);
  EXPECT_EQ(Ids.back(), 3);
}

TEST(DatasetTest, ClassCounts) {
  Dataset Data = groupedDataset();
  std::vector<size_t> Counts = Data.classCounts();
  ASSERT_EQ(Counts.size(), 2u);
  EXPECT_EQ(Counts[0], 20u);
  EXPECT_EQ(Counts[1], 20u);
}

TEST(DatasetTest, AppendGrows) {
  Dataset Data = groupedDataset();
  Dataset Other = Data.byGroups({0});
  size_t Before = Data.size();
  Data.append(Other);
  EXPECT_EQ(Data.size(), Before + Other.size());
}

//===----------------------------------------------------------------------===//
// Splits
//===----------------------------------------------------------------------===//

TEST(SplitTest, RandomSplitSizesAndDisjointness) {
  support::Rng R(1);
  Dataset Data = groupedDataset();
  TrainTest Split = randomSplit(Data, 0.25, R);
  EXPECT_EQ(Split.Test.size(), 10u);
  EXPECT_EQ(Split.Train.size(), 30u);
  std::set<uint64_t> TrainIds, TestIds;
  for (const Sample &S : Split.Train.samples())
    TrainIds.insert(S.Id);
  for (const Sample &S : Split.Test.samples())
    TestIds.insert(S.Id);
  for (uint64_t Id : TestIds)
    EXPECT_EQ(TrainIds.count(Id), 0u);
}

TEST(SplitTest, StratifiedKeepsClassBalance) {
  support::Rng R(2);
  Dataset Data = prom::testing::gaussianBlobs(3, 60, 4.0, 0.5, R);
  TrainTest Split = stratifiedSplit(Data, 0.25, R);
  std::vector<size_t> Counts = Split.Test.classCounts();
  for (size_t C : Counts)
    EXPECT_EQ(C, 15u);
}

TEST(SplitTest, KFoldPartitionsAll) {
  support::Rng R(3);
  Dataset Data = groupedDataset();
  std::vector<TrainTest> Folds = kFold(Data, 4, R);
  ASSERT_EQ(Folds.size(), 4u);
  size_t TotalTest = 0;
  std::set<uint64_t> SeenTest;
  for (const TrainTest &F : Folds) {
    EXPECT_EQ(F.Train.size() + F.Test.size(), Data.size());
    TotalTest += F.Test.size();
    for (const Sample &S : F.Test.samples())
      SeenTest.insert(S.Id);
  }
  EXPECT_EQ(TotalTest, Data.size());
  EXPECT_EQ(SeenTest.size(), Data.size());
}

TEST(SplitTest, LeaveGroupOutOnePerGroup) {
  Dataset Data = groupedDataset();
  std::vector<TrainTest> Splits = leaveGroupOut(Data);
  ASSERT_EQ(Splits.size(), 4u);
  for (const TrainTest &S : Splits) {
    EXPECT_EQ(S.Test.size(), 10u);
    EXPECT_EQ(S.Train.size(), 30u);
    int HeldGroup = S.Test[0].Group;
    for (const Sample &Sm : S.Train.samples())
      EXPECT_NE(Sm.Group, HeldGroup);
  }
}

TEST(SplitTest, CalibrationPartitionDefaults) {
  support::Rng R(4);
  Dataset Data = prom::testing::gaussianBlobs(2, 300, 4.0, 0.5, R);
  auto [Train, Calib] = calibrationPartition(Data, R);
  EXPECT_EQ(Calib.size(), 60u); // 10% of 600.
  EXPECT_EQ(Train.size(), 540u);
}

TEST(SplitTest, CalibrationPartitionCapped) {
  support::Rng R(4);
  Dataset Data = prom::testing::gaussianBlobs(2, 600, 4.0, 0.5, R);
  auto [Train, Calib] = calibrationPartition(Data, R, 0.5, 100);
  EXPECT_EQ(Calib.size(), 100u); // Capped below 50% of 1200.
  EXPECT_EQ(Train.size(), 1100u);
}

//===----------------------------------------------------------------------===//
// Scaler
//===----------------------------------------------------------------------===//

TEST(ScalerTest, StandardizesTrainingData) {
  support::Rng R(5);
  Dataset Data("scaled", 2);
  for (int I = 0; I < 500; ++I) {
    Sample S;
    S.Features = {R.gaussian(100.0, 25.0), R.gaussian(-3.0, 0.1)};
    S.Label = 0;
    Data.add(std::move(S));
  }
  StandardScaler Scaler;
  Scaler.fit(Data);
  Scaler.transformInPlace(Data);

  double Sum0 = 0.0, Sq0 = 0.0;
  for (const Sample &S : Data.samples()) {
    Sum0 += S.Features[0];
    Sq0 += S.Features[0] * S.Features[0];
  }
  double N = static_cast<double>(Data.size());
  EXPECT_NEAR(Sum0 / N, 0.0, 1e-9);
  EXPECT_NEAR(Sq0 / N, 1.0, 1e-6);
}

TEST(ScalerTest, ConstantDimensionCentersOnly) {
  Dataset Data("const", 2);
  for (int I = 0; I < 10; ++I) {
    Sample S;
    S.Features = {7.0, static_cast<double>(I)};
    S.Label = 0;
    Data.add(std::move(S));
  }
  StandardScaler Scaler;
  Scaler.fit(Data);
  std::vector<double> T = Scaler.transform({7.0, 4.5});
  EXPECT_DOUBLE_EQ(T[0], 0.0);
}

TEST(ScalerTest, TransformUsesTrainStatistics) {
  Dataset Data("train", 2);
  for (int I = 0; I < 4; ++I) {
    Sample S;
    S.Features = {static_cast<double>(I)}; // mean 1.5
    S.Label = 0;
    Data.add(std::move(S));
  }
  StandardScaler Scaler;
  Scaler.fit(Data);
  std::vector<double> T = Scaler.transform({1.5});
  EXPECT_NEAR(T[0], 0.0, 1e-12);
}
