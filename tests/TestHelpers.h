//===- tests/TestHelpers.h - Shared test fixtures -----------------*- C++ -*-===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small dataset builders shared across the test suites.
///
//===----------------------------------------------------------------------===//

#ifndef PROM_TESTS_TESTHELPERS_H
#define PROM_TESTS_TESTHELPERS_H

#include "core/Detector.h"
#include "data/Dataset.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

namespace prom {
namespace testing {

/// IEEE-754 bit pattern of \p V, for exact floating-point comparisons
/// (distinguishes ±0.0 and compares NaNs by payload, unlike ==).
inline uint64_t bits(double V) {
  uint64_t B;
  std::memcpy(&B, &V, sizeof(B));
  return B;
}

/// The shared verdict-equality oracle of the bit-identity suites: every
/// field of the committee verdict, with expert scores compared by bit
/// pattern. Extend HERE when Verdict grows a field, so no suite silently
/// compares less than the whole verdict.
inline void expectSameVerdict(const Verdict &A, const Verdict &B,
                              size_t Index) {
  SCOPED_TRACE("sample " + std::to_string(Index));
  EXPECT_EQ(A.Predicted, B.Predicted);
  EXPECT_EQ(A.Drifted, B.Drifted);
  EXPECT_EQ(A.VotesToFlag, B.VotesToFlag);
  ASSERT_EQ(A.Probabilities.size(), B.Probabilities.size());
  for (size_t C = 0; C < A.Probabilities.size(); ++C)
    EXPECT_EQ(bits(A.Probabilities[C]), bits(B.Probabilities[C]));
  ASSERT_EQ(A.Experts.size(), B.Experts.size());
  for (size_t E = 0; E < A.Experts.size(); ++E) {
    EXPECT_EQ(bits(A.Experts[E].Credibility),
              bits(B.Experts[E].Credibility));
    EXPECT_EQ(bits(A.Experts[E].Confidence), bits(B.Experts[E].Confidence));
    EXPECT_EQ(A.Experts[E].PredictionSetSize,
              B.Experts[E].PredictionSetSize);
    EXPECT_EQ(A.Experts[E].FlagDrift, B.Experts[E].FlagDrift);
  }
}

/// Regression-committee analogue of expectSameVerdict, shared for the
/// same reason: extend HERE when RegressionVerdict grows a field.
inline void expectSameRegressionVerdict(const RegressionVerdict &A,
                                        const RegressionVerdict &B,
                                        size_t Index) {
  SCOPED_TRACE("sample " + std::to_string(Index));
  EXPECT_EQ(bits(A.Predicted), bits(B.Predicted));
  EXPECT_EQ(A.Cluster, B.Cluster);
  EXPECT_EQ(A.Drifted, B.Drifted);
  EXPECT_EQ(A.VotesToFlag, B.VotesToFlag);
  ASSERT_EQ(A.Experts.size(), B.Experts.size());
  for (size_t E = 0; E < A.Experts.size(); ++E) {
    EXPECT_EQ(bits(A.Experts[E].Credibility),
              bits(B.Experts[E].Credibility));
    EXPECT_EQ(bits(A.Experts[E].Confidence), bits(B.Experts[E].Confidence));
    EXPECT_EQ(A.Experts[E].PredictionSetSize,
              B.Experts[E].PredictionSetSize);
    EXPECT_EQ(A.Experts[E].FlagDrift, B.Experts[E].FlagDrift);
  }
}

/// Gaussian blobs: \p NumClasses clusters on a circle of radius
/// \p Separation, \p PerClass samples each, noise \p Sigma.
inline data::Dataset gaussianBlobs(int NumClasses, size_t PerClass,
                                   double Separation, double Sigma,
                                   support::Rng &R, double ShiftX = 0.0) {
  data::Dataset Data("blobs", NumClasses);
  for (int C = 0; C < NumClasses; ++C) {
    double Angle = 2.0 * 3.14159265358979 * C / NumClasses;
    double Cx = Separation * std::cos(Angle) + ShiftX;
    double Cy = Separation * std::sin(Angle);
    for (size_t I = 0; I < PerClass; ++I) {
      data::Sample S;
      S.Features = {Cx + R.gaussian(0.0, Sigma),
                    Cy + R.gaussian(0.0, Sigma)};
      S.Label = C;
      S.Group = C;
      Data.add(std::move(S));
    }
  }
  return Data;
}

/// Token-sequence dataset: class c emits mostly token c plus noise; vocab
/// = NumClasses + 2.
inline data::Dataset tokenBlobs(int NumClasses, size_t PerClass, size_t Len,
                                support::Rng &R) {
  data::Dataset Data("tokens", NumClasses, NumClasses + 2);
  for (int C = 0; C < NumClasses; ++C) {
    for (size_t I = 0; I < PerClass; ++I) {
      data::Sample S;
      for (size_t T = 0; T < Len; ++T)
        S.Tokens.push_back(R.bernoulli(0.7) ? C
                                            : R.intIn(0, NumClasses + 1));
      S.Features = {static_cast<double>(C), 1.0};
      S.Label = C;
      Data.add(std::move(S));
    }
  }
  return Data;
}

/// Linear regression dataset: y = 2 x0 - x1 + noise.
inline data::Dataset linearRegression(size_t N, double Noise,
                                      support::Rng &R) {
  data::Dataset Data("linreg", 0);
  for (size_t I = 0; I < N; ++I) {
    data::Sample S;
    double X0 = R.uniform(-2.0, 2.0), X1 = R.uniform(-2.0, 2.0);
    S.Features = {X0, X1};
    S.Target = 2.0 * X0 - X1 + R.gaussian(0.0, Noise);
    Data.add(std::move(S));
  }
  return Data;
}

} // namespace testing
} // namespace prom

#endif // PROM_TESTS_TESTHELPERS_H
