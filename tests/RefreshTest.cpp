//===- tests/RefreshTest.cpp - online calibration refresh ---------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The online-refresh contract: after appendEntries() + refinalize() —
// with or without oldest-first eviction — a CalibrationStore behaves
// bit-identically to a brand-new store finalized on the surviving union
// of entries, for every shard count, on both the general weighted path
// and the unweighted sorted-index fast path. At the detector level,
// refreshCalibration(Incremental=true) must produce verdicts bit-equal
// to the full-rebuild reference path. CMake registers this suite at
// PROM_THREADS=1 and PROM_THREADS=4, so the contract is enforced across
// thread counts as well.
//
//===----------------------------------------------------------------------===//

#include "core/Detector.h"
#include "data/Split.h"
#include "ml/Linear.h"
#include "tests/StoreTestHelpers.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace prom;
using prom::testing::bits;
using prom::testing::expectSameVerdict;
using prom::testing::gaussianBlobs;

using prom::testing::expectBothRegimesMatch;
using prom::testing::makeEntries;
using prom::testing::referenceStore;

TEST(RefreshTest, AppendOnlyRefreshMatchesFromScratch) {
  // Three staggered refreshes — a single entry, a batch that introduces a
  // brand-new label (bucket growth on every shard), and a multi-block
  // batch — each compared against a from-scratch finalize of the union.
  for (size_t K : {size_t(1), size_t(8)}) {
    SCOPED_TRACE("K=" + std::to_string(K));
    support::Rng R(1234);
    std::vector<CalibrationEntry> All = makeEntries(1500, 7, 3, 2, R);

    CalibrationStore Live;
    for (const CalibrationEntry &E : All)
      Live.add(E);
    Live.finalize(K);

    size_t Step = 0;
    for (size_t BatchSize : {size_t(1), size_t(200), size_t(300)}) {
      std::vector<CalibrationEntry> Fresh =
          makeEntries(BatchSize, 7, Step == 1 ? 4 : 3, 2, R);
      All.insert(All.end(), Fresh.begin(), Fresh.end());
      Live.appendEntries(std::move(Fresh));
      Live.refinalize();
      CalibrationStore Ref = referenceStore(All, K);
      expectBothRegimesMatch(Live, Ref, 77 + Step,
                             ("refresh " + std::to_string(Step)).c_str());
      ++Step;
    }
  }
}

TEST(RefreshTest, BoundedStoreEvictsOldestAndMatchesFromScratch) {
  for (size_t K : {size_t(1), size_t(8)}) {
    SCOPED_TRACE("K=" + std::to_string(K));
    support::Rng R(555);
    std::vector<CalibrationEntry> All = makeEntries(1500, 5, 3, 2, R);

    CalibrationStore Live;
    for (const CalibrationEntry &E : All)
      Live.add(E);
    Live.finalize(K);
    Live.setMaxEntries(1600);

    std::vector<CalibrationEntry> Fresh = makeEntries(400, 5, 3, 2, R);
    All.insert(All.end(), Fresh.begin(), Fresh.end());
    Live.appendEntries(std::move(Fresh));
    Live.refinalize();
    EXPECT_EQ(Live.size(), 1600u);

    // Oldest-first: the survivors are the union minus its 300-entry prefix.
    std::vector<CalibrationEntry> Survivors(All.begin() + 300, All.end());
    CalibrationStore Ref = referenceStore(Survivors, K);
    expectBothRegimesMatch(Live, Ref, 91, "evicted");

    // A second bounded refresh on the already-evicted store.
    Fresh = makeEntries(256, 5, 3, 2, R);
    Survivors.insert(Survivors.end(), Fresh.begin(), Fresh.end());
    Live.appendEntries(std::move(Fresh));
    Live.refinalize();
    Survivors.erase(Survivors.begin(), Survivors.begin() + 256);
    CalibrationStore Ref2 = referenceStore(Survivors, K);
    expectBothRegimesMatch(Live, Ref2, 92, "evicted-again");
  }
}

TEST(RefreshTest, SmallStoreRefreshRecomputesDistanceScale) {
  // Below the 256-entry median-NN sample window, an append changes the
  // window — the refreshed distance scale must match a fresh finalize.
  support::Rng R(31);
  std::vector<CalibrationEntry> All = makeEntries(100, 4, 2, 2, R);
  CalibrationStore Live;
  for (const CalibrationEntry &E : All)
    Live.add(E);
  Live.finalize(1);

  std::vector<CalibrationEntry> Fresh = makeEntries(80, 4, 2, 2, R);
  All.insert(All.end(), Fresh.begin(), Fresh.end());
  Live.appendEntries(std::move(Fresh));
  Live.refinalize();

  CalibrationStore Ref = referenceStore(All, 1);
  expectBothRegimesMatch(Live, Ref, 13, "small-store");
}

TEST(RefreshTest, RefreshLargerThanBoundFallsBackToRebuild) {
  // The staged batch alone exceeds the bound: eviction swallows the whole
  // indexed prefix and refinalize() must take the full-rebuild fallback —
  // still landing bit-identical to the from-scratch reference.
  support::Rng R(417);
  std::vector<CalibrationEntry> All = makeEntries(150, 4, 3, 2, R);
  CalibrationStore Live;
  for (const CalibrationEntry &E : All)
    Live.add(E);
  Live.finalize(4);
  Live.setMaxEntries(100);

  std::vector<CalibrationEntry> Fresh = makeEntries(200, 4, 3, 2, R);
  All.insert(All.end(), Fresh.begin(), Fresh.end());
  Live.appendEntries(std::move(Fresh));
  Live.refinalize();
  EXPECT_EQ(Live.size(), 100u);

  std::vector<CalibrationEntry> Survivors(All.begin() + 250, All.end());
  CalibrationStore Ref = referenceStore(Survivors, 4);
  expectBothRegimesMatch(Live, Ref, 29, "degenerate-eviction");
}

TEST(RefreshTest, ManySmallRefreshesStayExactAcrossRebalances) {
  // Ten block-sized refreshes against an 8-shard store: the last shard
  // absorbs new blocks and periodically rebalances; every intermediate
  // state must match a from-scratch build (layout independence).
  support::Rng R(808);
  std::vector<CalibrationEntry> All = makeEntries(2560, 6, 3, 2, R);
  CalibrationStore Live;
  for (const CalibrationEntry &E : All)
    Live.add(E);
  Live.finalize(8);
  ASSERT_GE(Live.numShards(), 2u);

  for (int Round = 0; Round < 10; ++Round) {
    std::vector<CalibrationEntry> Fresh = makeEntries(256, 6, 3, 2, R);
    All.insert(All.end(), Fresh.begin(), Fresh.end());
    Live.appendEntries(std::move(Fresh));
    Live.refinalize();
    if (Round % 3 == 2) { // Full compare every few rounds (cost).
      CalibrationStore Ref = referenceStore(All, 8);
      expectBothRegimesMatch(Live, Ref, 300 + Round,
                             ("round " + std::to_string(Round)).c_str());
    }
  }
  // The partition must have rebalanced rather than degenerating into one
  // ever-growing tail shard.
  EXPECT_GE(Live.numShards(), 4u);
}

TEST(RefreshTest, DetectorRefreshMatchesFullRebuildReference) {
  support::Rng R(63);
  data::Dataset Full = gaussianBlobs(3, 400, 4.0, 0.8, R);
  auto Split = data::calibrationPartition(Full, R, 0.6);
  data::Dataset Train = std::move(Split.first);
  data::Dataset Calib = std::move(Split.second);
  ml::LogisticRegression Model;
  Model.fit(Train, R);

  PromConfig Cfg;
  Cfg.NumShards = 4;
  Cfg.MaxCalibEntries = Calib.size() + 40; // The second refresh evicts.
  PromClassifier Incremental(Model, Cfg);
  PromClassifier Reference(Model, Cfg);
  Incremental.calibrate(Calib);
  Reference.calibrate(Calib);

  data::Dataset Probes = gaussianBlobs(3, 60, 4.0, 0.8, R);
  std::vector<Verdict> Before = Incremental.assessBatch(Probes);

  // Two refresh rounds: append-only, then one that trips the bound.
  for (int Round = 0; Round < 2; ++Round) {
    SCOPED_TRACE("round " + std::to_string(Round));
    data::Dataset Relabeled = gaussianBlobs(3, 30, 4.0, 0.8, R);
    size_t SizeInc = Incremental.refreshCalibration(Relabeled,
                                                    /*Incremental=*/true);
    size_t SizeRef = Reference.refreshCalibration(Relabeled,
                                                  /*Incremental=*/false);
    EXPECT_EQ(SizeInc, SizeRef);
    EXPECT_LE(SizeInc, Cfg.MaxCalibEntries);

    std::vector<Verdict> VInc = Incremental.assessBatch(Probes);
    std::vector<Verdict> VRef = Reference.assessBatch(Probes);
    ASSERT_EQ(VInc.size(), VRef.size());
    for (size_t I = 0; I < VInc.size(); ++I)
      expectSameVerdict(VInc[I], VRef[I], I);
    // The refreshed store must also agree with the per-sample serial
    // oracle (flat select + per-expert p-value scans).
    for (size_t I = 0; I < Probes.size(); I += 11)
      expectSameVerdict(Incremental.assessSerial(Probes[I]), VInc[I], I);
  }

  // Sanity: the refresh actually changed the calibration evidence.
  EXPECT_EQ(Incremental.calibrationSize(), Calib.size() + 40);
  std::vector<Verdict> After = Incremental.assessBatch(Probes);
  bool AnyChanged = false;
  for (size_t I = 0; I < Probes.size() && !AnyChanged; ++I)
    for (size_t E = 0; E < After[I].Experts.size() && !AnyChanged; ++E)
      AnyChanged = After[I].Experts[E].Credibility !=
                   Before[I].Experts[E].Credibility;
  EXPECT_TRUE(AnyChanged);
}

TEST(RefreshTest, ClusterIndexSurvivesRefreshLifecycle) {
  // The per-shard cluster indexes are derived state riding along the
  // refresh lifecycle: small appends leave a stale (exactly scanned)
  // tail, a large enough tail triggers a per-shard rebuild, and
  // eviction / rebalance / reshard invalidate the indexes wholesale.
  // After every mutation the pruned store must still match a from-scratch
  // exact-scan reference bit for bit.
  for (size_t K : {size_t(1), size_t(4)}) {
    SCOPED_TRACE("K=" + std::to_string(K));
    support::Rng R(4321);
    std::vector<CalibrationEntry> All = makeEntries(2000, 6, 3, 2, R);

    CalibrationStore Live;
    for (const CalibrationEntry &E : All)
      Live.add(E);
    ClusterIndexPolicy Policy;
    Policy.Enabled = true;
    Policy.MinEntries = 64;
    Policy.MaxStaleFraction = 0.25;
    Policy.MaxSelectFraction = 1.0; // Keep the 50% default-config
                                    // selection on the pruned path.
    Live.setIndexPolicy(Policy);
    Live.finalize(K);
    ASSERT_GT(Live.indexedShards(), 0u);
    EXPECT_EQ(Live.unindexedEntries(), 0u);

    // Small append: the tail stays under the staleness bound, so the
    // last shard's index is kept and the new rows are scanned exactly.
    std::vector<CalibrationEntry> Fresh = makeEntries(64, 6, 3, 2, R);
    All.insert(All.end(), Fresh.begin(), Fresh.end());
    Live.appendEntries(std::move(Fresh));
    Live.refinalize();
    EXPECT_GT(Live.unindexedEntries(), 0u);
    expectBothRegimesMatch(Live, referenceStore(All, K), 301, "stale-tail");

    // Pile on appends until the tail crosses MaxStaleFraction (or the
    // partition rebalances): the affected index must rebuild — covered
    // rows catch back up with the shard.
    for (int Step = 0; Step < 6; ++Step) {
      Fresh = makeEntries(256, 6, 3, 2, R);
      All.insert(All.end(), Fresh.begin(), Fresh.end());
      Live.appendEntries(std::move(Fresh));
      Live.refinalize();
    }
    EXPECT_LE(static_cast<double>(Live.unindexedEntries()),
              Policy.MaxStaleFraction * static_cast<double>(Live.size()));
    expectBothRegimesMatch(Live, referenceStore(All, K), 302,
                           "rebuilt-after-staleness");

    // Eviction re-blocks every entry: indexes rebuild wholesale and the
    // store still matches the reference on the survivors.
    Live.setMaxEntries(2048);
    Fresh = makeEntries(400, 6, 3, 2, R);
    All.insert(All.end(), Fresh.begin(), Fresh.end());
    Live.appendEntries(std::move(Fresh));
    Live.refinalize();
    All.erase(All.begin(),
              All.begin() + static_cast<long>(All.size() - 2048));
    ASSERT_EQ(Live.size(), 2048u);
    EXPECT_GT(Live.indexedShards(), 0u);
    expectBothRegimesMatch(Live, referenceStore(All, K), 303, "evicted");

    // Reshard moves every boundary; indexes follow the new partition.
    Live.reshard(K == 1 ? 4 : 1);
    EXPECT_GT(Live.indexedShards(), 0u);
    expectBothRegimesMatch(Live, referenceStore(All, K == 1 ? 4 : 1), 304,
                           "resharded");

    // Disabling the policy drops every index and falls back to the exact
    // scan; re-enabling restores pruned serving. Bit-identical both ways.
    ClusterIndexPolicy Off;
    Live.setIndexPolicy(Off);
    EXPECT_EQ(Live.indexedShards(), 0u);
    EXPECT_EQ(Live.unindexedEntries(), Live.size());
    expectBothRegimesMatch(Live, referenceStore(All, K == 1 ? 4 : 1), 305,
                           "policy-off");
    Live.setIndexPolicy(Policy);
    EXPECT_GT(Live.indexedShards(), 0u);
    EXPECT_EQ(Live.unindexedEntries(), 0u);
    expectBothRegimesMatch(Live, referenceStore(All, K == 1 ? 4 : 1), 306,
                           "policy-back-on");
  }
}

TEST(RefreshTest, EmptyRefreshIsANoop) {
  support::Rng R(7);
  data::Dataset Full = gaussianBlobs(2, 120, 4.0, 0.8, R);
  auto Split = data::calibrationPartition(Full, R, 0.5);
  ml::LogisticRegression Model;
  Model.fit(Split.first, R);
  PromClassifier Prom(Model);
  Prom.calibrate(Split.second);

  data::Dataset Probes = gaussianBlobs(2, 20, 4.0, 0.8, R);
  std::vector<Verdict> Before = Prom.assessBatch(Probes);
  EXPECT_EQ(Prom.refreshCalibration(data::Dataset()), Split.second.size());
  std::vector<Verdict> After = Prom.assessBatch(Probes);
  for (size_t I = 0; I < Probes.size(); ++I)
    expectSameVerdict(Before[I], After[I], I);
}
