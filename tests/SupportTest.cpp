//===- tests/SupportTest.cpp - support library tests --------------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Distance.h"
#include "support/FeatureMatrix.h"
#include "support/KMeans.h"
#include "support/Matrix.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

using namespace prom::support;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng R(7);
  double Sum = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += R.uniform();
  EXPECT_NEAR(Sum / N, 0.5, 0.02);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.bounded(17), 17u);
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng R(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.bounded(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RngTest, IntInInclusiveRange) {
  Rng R(5);
  std::set<int> Seen;
  for (int I = 0; I < 500; ++I) {
    int V = R.intIn(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng R(11);
  const int N = 50000;
  double Sum = 0.0, Sq = 0.0;
  for (int I = 0; I < N; ++I) {
    double G = R.gaussian();
    Sum += G;
    Sq += G * G;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.03);
  EXPECT_NEAR(Sq / N, 1.0, 0.05);
}

TEST(RngTest, GaussianShiftScale) {
  Rng R(11);
  const int N = 20000;
  double Sum = 0.0;
  for (int I = 0; I < N; ++I)
    Sum += R.gaussian(5.0, 2.0);
  EXPECT_NEAR(Sum / N, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng R(13);
  int Hits = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    if (R.bernoulli(0.3))
      ++Hits;
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng R(17);
  std::vector<double> W = {1.0, 0.0, 3.0};
  int Counts[3] = {0, 0, 0};
  for (int I = 0; I < 8000; ++I)
    ++Counts[R.weightedIndex(W)];
  EXPECT_EQ(Counts[1], 0);
  EXPECT_NEAR(static_cast<double>(Counts[2]) / Counts[0], 3.0, 0.4);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackUniform) {
  Rng R(17);
  std::vector<double> W = {0.0, 0.0};
  int Counts[2] = {0, 0};
  for (int I = 0; I < 2000; ++I)
    ++Counts[R.weightedIndex(W)];
  EXPECT_GT(Counts[0], 500);
  EXPECT_GT(Counts[1], 500);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng R(19);
  std::vector<size_t> P = R.permutation(50);
  std::set<size_t> Seen(P.begin(), P.end());
  EXPECT_EQ(Seen.size(), 50u);
  EXPECT_EQ(*Seen.begin(), 0u);
  EXPECT_EQ(*Seen.rbegin(), 49u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng A(23);
  Rng B = A.split();
  // The child stream must differ from the parent continuation.
  int Same = 0;
  for (int I = 0; I < 50; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_EQ(Same, 0);
}

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix M(2, 3, 1.5);
  EXPECT_EQ(M.rows(), 2u);
  EXPECT_EQ(M.cols(), 3u);
  EXPECT_DOUBLE_EQ(M.at(1, 2), 1.5);
  M.at(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(M.at(0, 1), -2.0);
}

TEST(MatrixTest, MatmulKnownValues) {
  Matrix A(2, 2, {1, 2, 3, 4});
  Matrix B(2, 2, {5, 6, 7, 8});
  Matrix C = A.matmul(B);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 50);
}

TEST(MatrixTest, TransposedMatmulMatchesExplicit) {
  Rng R(1);
  Matrix A(3, 4), B(3, 5);
  A.fillGaussian(R, 1.0);
  B.fillGaussian(R, 1.0);
  Matrix Expect = A.transposed().matmul(B);
  Matrix Got = A.transposedMatmul(B);
  ASSERT_EQ(Got.rows(), Expect.rows());
  for (size_t I = 0; I < Got.rows(); ++I)
    for (size_t J = 0; J < Got.cols(); ++J)
      EXPECT_NEAR(Got.at(I, J), Expect.at(I, J), 1e-12);
}

TEST(MatrixTest, MatmulTransposedMatchesExplicit) {
  Rng R(2);
  Matrix A(3, 4), B(5, 4);
  A.fillGaussian(R, 1.0);
  B.fillGaussian(R, 1.0);
  Matrix Expect = A.matmul(B.transposed());
  Matrix Got = A.matmulTransposed(B);
  for (size_t I = 0; I < Got.rows(); ++I)
    for (size_t J = 0; J < Got.cols(); ++J)
      EXPECT_NEAR(Got.at(I, J), Expect.at(I, J), 1e-12);
}

TEST(MatrixTest, AddScaledAndScale) {
  Matrix A(1, 3, {1, 2, 3});
  Matrix B(1, 3, {10, 20, 30});
  A.addScaled(B, 0.1);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 2.0);
  A.scale(2.0);
  EXPECT_DOUBLE_EQ(A.at(0, 2), 12.0);
}

TEST(MatrixTest, RowBroadcastAndColumnSums) {
  Matrix A(2, 2, {1, 2, 3, 4});
  A.addRowBroadcast({10, 20});
  EXPECT_DOUBLE_EQ(A.at(0, 0), 11);
  EXPECT_DOUBLE_EQ(A.at(1, 1), 24);
  std::vector<double> Sums = A.columnSums();
  EXPECT_DOUBLE_EQ(Sums[0], 24);
  EXPECT_DOUBLE_EQ(Sums[1], 46);
}

TEST(MatrixTest, Hadamard) {
  Matrix A(1, 3, {1, 2, 3});
  Matrix B(1, 3, {2, 0.5, -1});
  A.hadamard(B);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 2);
  EXPECT_DOUBLE_EQ(A.at(0, 1), 1);
  EXPECT_DOUBLE_EQ(A.at(0, 2), -3);
}

TEST(MatrixTest, SoftmaxNormalizes) {
  std::vector<double> L = {1.0, 2.0, 3.0};
  softmaxInPlace(L);
  EXPECT_NEAR(L[0] + L[1] + L[2], 1.0, 1e-12);
  EXPECT_GT(L[2], L[1]);
  EXPECT_GT(L[1], L[0]);
}

TEST(MatrixTest, SoftmaxStableForLargeLogits) {
  std::vector<double> L = {1000.0, 1001.0};
  softmaxInPlace(L);
  EXPECT_NEAR(L[0] + L[1], 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(L[0]));
}

TEST(MatrixTest, ArgmaxFirstOnTies) {
  EXPECT_EQ(argmax({1.0, 3.0, 3.0}), 1u);
  EXPECT_EQ(argmax({5.0}), 0u);
}

TEST(MatrixTest, DotAndAxpy) {
  std::vector<double> A = {1, 2, 3}, B = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(A, B), 32.0);
  axpy(A, B, 2.0);
  EXPECT_DOUBLE_EQ(A[2], 15.0);
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

TEST(StatsTest, MeanVarianceStddev) {
  std::vector<double> V = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(V), 5.0);
  EXPECT_DOUBLE_EQ(variance(V), 4.0);
  EXPECT_DOUBLE_EQ(stddev(V), 2.0);
}

TEST(StatsTest, EmptyInputsAreSafe) {
  std::vector<double> V;
  EXPECT_DOUBLE_EQ(mean(V), 0.0);
  EXPECT_DOUBLE_EQ(variance(V), 0.0);
  EXPECT_DOUBLE_EQ(geomean(V), 0.0);
  Summary S = summarize(V);
  EXPECT_EQ(S.Count, 0u);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> V = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(StatsTest, GeomeanKnownValue) {
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(StatsTest, SummaryOrdering) {
  Rng R(3);
  std::vector<double> V;
  for (int I = 0; I < 500; ++I)
    V.push_back(R.uniform());
  Summary S = summarize(V);
  EXPECT_LE(S.Min, S.Q25);
  EXPECT_LE(S.Q25, S.Median);
  EXPECT_LE(S.Median, S.Q75);
  EXPECT_LE(S.Q75, S.Max);
  EXPECT_EQ(S.Count, 500u);
}

//===----------------------------------------------------------------------===//
// Distance
//===----------------------------------------------------------------------===//

TEST(DistanceTest, EuclideanKnownValues) {
  EXPECT_DOUBLE_EQ(euclidean({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(squaredEuclidean({1, 1}, {1, 1}), 0.0);
}

TEST(DistanceTest, CosineDistance) {
  EXPECT_NEAR(cosineDistance({1, 0}, {0, 1}), 1.0, 1e-12);
  EXPECT_NEAR(cosineDistance({1, 1}, {2, 2}), 0.0, 1e-12);
  EXPECT_NEAR(cosineDistance({1, 0}, {-1, 0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(cosineDistance({0, 0}, {1, 1}), 1.0);
}

TEST(DistanceTest, KNearestOrdersByDistance) {
  std::vector<std::vector<double>> Points = {{0, 0}, {5, 0}, {1, 0}, {3, 0}};
  std::vector<size_t> Near = kNearest(Points, {0.4, 0.0}, 2);
  ASSERT_EQ(Near.size(), 2u);
  EXPECT_EQ(Near[0], 0u);
  EXPECT_EQ(Near[1], 2u);
}

TEST(DistanceTest, KNearestClampsK) {
  std::vector<std::vector<double>> Points = {{0, 0}, {1, 1}};
  EXPECT_EQ(kNearest(Points, {0, 0}, 10).size(), 2u);
}

TEST(DistanceTest, KNearestBreaksDistanceTiesByAscendingIndex) {
  // Regression test for the nth_element + prefix-sort rewrite: many rows
  // at exactly the same distance must come back in ascending-index order,
  // and the kept set must cut ties at the boundary by index too.
  std::vector<std::vector<double>> Points;
  for (int I = 0; I < 8; ++I)
    Points.push_back({1.0, 0.0}); // All at distance 1 from the origin.
  Points.push_back({0.5, 0.0});   // Index 8: strictly closer.
  std::vector<size_t> Near = kNearest(Points, {0.0, 0.0}, 4);
  ASSERT_EQ(Near.size(), 4u);
  EXPECT_EQ(Near[0], 8u); // Closest first.
  EXPECT_EQ(Near[1], 0u); // Then tied rows by ascending index.
  EXPECT_EQ(Near[2], 1u);
  EXPECT_EQ(Near[3], 2u);

  // The FeatureMatrix overload makes the same selection from the flat
  // block scan.
  FeatureMatrix Flat = FeatureMatrix::fromRows(Points);
  std::vector<double> Query = {0.0, 0.0};
  EXPECT_EQ(kNearest(Flat, Query.data(), 4), Near);
  EXPECT_EQ(kNearest(Flat, Query.data(), Points.size() + 3).size(),
            Points.size());
  // K = 0 on a non-empty set is well-defined: empty selection.
  EXPECT_TRUE(kNearest(Points, {0.0, 0.0}, 0).empty());
  EXPECT_TRUE(kNearest(Flat, Query.data(), 0).empty());

  // The batched overload must make the SAME selection per query — the one
  // tie-break rule (distance, then ascending index) is selectNearest(),
  // shared by every path. Regression test: kNearest and the batched k-NN
  // scan may never disagree on duplicate distances.
  std::vector<std::vector<double>> QueryRows = {
      {0.0, 0.0}, {0.0, 0.0}, {2.0, 0.0}};
  FeatureMatrix Queries = FeatureMatrix::fromRows(QueryRows);
  std::vector<std::vector<size_t>> Batched = kNearestBatch(Flat, Queries, 4);
  ASSERT_EQ(Batched.size(), 3u);
  EXPECT_EQ(Batched[0], Near);
  EXPECT_EQ(Batched[1], Near);
  EXPECT_EQ(Batched[2], kNearest(Flat, QueryRows[2].data(), 4));
}

TEST(DistanceTest, SelectNearestIsTheSharedTieBreakRule) {
  // Pin the rule itself: equal values rank by ascending index, the kept
  // prefix is sorted closest-first, and K clamps to N.
  std::vector<double> Dist = {2.0, 1.0, 2.0, 1.0, 0.5};
  std::vector<size_t> Sel = selectNearest(Dist.data(), Dist.size(), 4);
  ASSERT_EQ(Sel.size(), 4u);
  EXPECT_EQ(Sel[0], 4u); // 0.5
  EXPECT_EQ(Sel[1], 1u); // 1.0, lower index first.
  EXPECT_EQ(Sel[2], 3u); // 1.0
  EXPECT_EQ(Sel[3], 0u); // 2.0, lower index wins the boundary tie.
  EXPECT_EQ(selectNearest(Dist.data(), Dist.size(), 99).size(), 5u);
  EXPECT_TRUE(selectNearest(Dist.data(), 0, 3).empty());
}

//===----------------------------------------------------------------------===//
// KMeans + gap statistic
//===----------------------------------------------------------------------===//

TEST(KMeansTest, SeparatesObviousClusters) {
  Rng R(5);
  std::vector<std::vector<double>> Points;
  for (int C = 0; C < 3; ++C)
    for (int I = 0; I < 40; ++I)
      Points.push_back({C * 10.0 + R.gaussian(0.0, 0.3),
                        C * 10.0 + R.gaussian(0.0, 0.3)});
  KMeansResult Res = kMeans(Points, 3, R);
  // All members of one true cluster must share an assignment.
  for (int C = 0; C < 3; ++C) {
    int First = Res.Assignments[static_cast<size_t>(C) * 40];
    for (int I = 0; I < 40; ++I)
      EXPECT_EQ(Res.Assignments[static_cast<size_t>(C) * 40 + I], First);
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng R(6);
  std::vector<std::vector<double>> Points;
  for (int I = 0; I < 200; ++I)
    Points.push_back({R.uniform(0, 10), R.uniform(0, 10)});
  double Prev = kMeans(Points, 1, R).Inertia;
  for (size_t K = 2; K <= 8; K += 2) {
    double Cur = kMeans(Points, K, R).Inertia;
    EXPECT_LE(Cur, Prev * 1.05); // Allow slight local-minimum noise.
    Prev = Cur;
  }
}

TEST(KMeansTest, KClampedToPointCount) {
  Rng R(7);
  std::vector<std::vector<double>> Points = {{0, 0}, {1, 1}};
  KMeansResult Res = kMeans(Points, 10, R);
  EXPECT_LE(Res.Centroids.size(), 2u);
}

TEST(KMeansTest, EmptyClustersReseedToFarthestPoint) {
  // Quantizer-duty hardening: clusters that empty out during Lloyd
  // iterations must be reseeded (to the farthest unclaimed point) instead
  // of silently keeping a dead centroid. With distinct points and K well
  // below N, every cluster must end up non-empty for any seed.
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    Rng R(Seed);
    std::vector<std::vector<double>> Points;
    for (int I = 0; I < 40; ++I)
      Points.push_back({static_cast<double>(I) * 1.7,
                        static_cast<double>(I % 5) * 3.1});
    KMeansResult Res = kMeans(Points, 20, R);
    ASSERT_EQ(Res.Centroids.size(), 20u);
    std::vector<int> Counts(20, 0);
    for (int A : Res.Assignments)
      ++Counts[static_cast<size_t>(A)];
    for (size_t C = 0; C < 20; ++C)
      EXPECT_GT(Counts[C], 0) << "cluster " << C << " ended empty";
  }
}

TEST(KMeansTest, NearestCentroidPicksClosest) {
  std::vector<std::vector<double>> Centroids = {{0, 0}, {10, 10}};
  EXPECT_EQ(nearestCentroid(Centroids, {1, 1}), 0u);
  EXPECT_EQ(nearestCentroid(Centroids, {9, 9}), 1u);
}

TEST(GapStatisticTest, FindsThreeBlobs) {
  Rng R(9);
  std::vector<std::vector<double>> Points;
  for (int C = 0; C < 3; ++C)
    for (int I = 0; I < 50; ++I)
      Points.push_back({C * 20.0 + R.gaussian(0.0, 0.5),
                        R.gaussian(0.0, 0.5)});
  size_t K = gapStatisticK(Points, R, 2, 8);
  EXPECT_GE(K, 2u);
  EXPECT_LE(K, 4u);
}

TEST(GapStatisticTest, TinyInputIsSafe) {
  Rng R(10);
  std::vector<std::vector<double>> Points = {{0.0, 0.0}};
  EXPECT_EQ(gapStatisticK(Points, R), 1u);
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::percent(0.5, 1), "50.0%");
}

TEST(TableTest, CsvRoundTrip) {
  Table T({"a", "b"});
  T.addRow({"1", "x"});
  T.addRow({"2", "y"});
  std::string Path = ::testing::TempDir() + "/prom_table_test.csv";
  ASSERT_TRUE(T.writeCsv(Path));
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[64];
  ASSERT_NE(std::fgets(Buf, sizeof(Buf), F), nullptr);
  EXPECT_STREQ(Buf, "a,b\n");
  ASSERT_NE(std::fgets(Buf, sizeof(Buf), F), nullptr);
  EXPECT_STREQ(Buf, "1,x\n");
  std::fclose(F);
}

TEST(TableTest, CsvFailsOnBadPath) {
  Table T({"a"});
  EXPECT_FALSE(T.writeCsv("/nonexistent-dir/zzz/file.csv"));
}
