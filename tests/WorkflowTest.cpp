//===- tests/WorkflowTest.cpp - assessment / search / IL / baseline tests -----===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "core/Assessment.h"
#include "core/GridSearch.h"
#include "core/IncrementalLearner.h"
#include "data/Split.h"
#include "ml/Knn.h"
#include "ml/Linear.h"
#include "ml/Mlp.h"
#include "support/Rng.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

using namespace prom;
using prom::testing::gaussianBlobs;
using prom::testing::linearRegression;

namespace {

ml::LogisticRegression softLogReg() {
  ml::LinearConfig Cfg;
  Cfg.Epochs = 30;
  Cfg.WeightDecay = 3e-2;
  return ml::LogisticRegression(Cfg);
}

} // namespace

//===----------------------------------------------------------------------===//
// Initialization assessment (Sec. 5.2)
//===----------------------------------------------------------------------===//

TEST(AssessmentTest, HealthySetupPasses) {
  support::Rng R(21);
  data::Dataset Full = gaussianBlobs(3, 250, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.2);
  ml::LogisticRegression Model = softLogReg();
  Model.fit(Train, R);

  AssessmentResult Res = assessInitialization(Model, Calib, PromConfig(), R);
  EXPECT_TRUE(Res.Ok);
  EXPECT_EQ(Res.FoldCoverages.size(), 3u);
  EXPECT_NEAR(Res.MeanCoverage, 0.9, 0.1);
}

namespace {

/// Degenerate underlying model: identical probabilities for every input.
/// Conformal p-values then tie at 1 for every label, coverage saturates at
/// 1.0 and the Eq. (3) deviation exceeds the alert threshold. (Note the CP
/// validity guarantee holds even for *weak* models as long as scores vary;
/// only degenerate outputs break the coverage diagnostic, which is exactly
/// what "poorly trained or designed underlying model" means here.)
class ConstantClassifier : public ml::Classifier {
public:
  void fit(const data::Dataset &Train, support::Rng &) override {
    Classes = Train.numClasses();
  }
  std::vector<double> predictProba(const data::Sample &) const override {
    std::vector<double> P(static_cast<size_t>(Classes),
                          0.3 / (Classes - 1));
    P[0] = 0.7;
    return P;
  }
  int numClasses() const override { return Classes; }
  std::string name() const override { return "Constant"; }

private:
  int Classes = 2;
};

} // namespace

TEST(AssessmentTest, DegenerateModelAlerts) {
  support::Rng R(22);
  data::Dataset Full = gaussianBlobs(4, 100, 4.0, 0.5, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.3);
  ConstantClassifier Model;
  Model.fit(Train, R);

  PromConfig Cfg;
  Cfg.Epsilon = 0.2; // Coverage pins at 1.0 -> deviation 0.2 > 0.1.
  AssessmentResult Res = assessInitialization(Model, Calib, Cfg, R);
  EXPECT_FALSE(Res.Ok);
  EXPECT_GT(Res.MeanCoverage, 0.95);
}

TEST(AssessmentTest, CustomRepeatCount) {
  support::Rng R(23);
  data::Dataset Full = gaussianBlobs(2, 150, 4.0, 0.6, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.3);
  ml::LogisticRegression Model = softLogReg();
  Model.fit(Train, R);
  AssessmentResult Res =
      assessInitialization(Model, Calib, PromConfig(), R, /*Repeats=*/5);
  EXPECT_EQ(Res.FoldCoverages.size(), 5u);
}

//===----------------------------------------------------------------------===//
// Grid search (Sec. 5.2)
//===----------------------------------------------------------------------===//

TEST(GridSearchTest, EvaluatesWholeGridAndReturnsMember) {
  support::Rng R(24);
  data::Dataset Full = gaussianBlobs(3, 150, 4.0, 1.1, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.3);
  ml::LogisticRegression Model = softLogReg();
  Model.fit(Train, R);

  GridSearchSpace Space;
  Space.Epsilons = {0.05, 0.2};
  Space.ConfThresholds = {0.95};
  Space.Taus = {100.0, 500.0};
  GridSearchResult Res =
      gridSearch(Model, Calib, Space, PromConfig(), R, /*Repeats=*/1);
  EXPECT_EQ(Res.NumEvaluated, 4u);
  EXPECT_GE(Res.BestF1, 0.0);
  // The sweep varies the credibility threshold (the set epsilon is fixed).
  bool CredOk = Res.Best.credThreshold() == 0.05 ||
                Res.Best.credThreshold() == 0.2;
  EXPECT_TRUE(CredOk);
}

//===----------------------------------------------------------------------===//
// Mispredicates
//===----------------------------------------------------------------------===//

TEST(MispredicateTest, LabelMismatch) {
  data::Sample S;
  S.Label = 2;
  MispredicateFn Fn = labelMispredicate();
  EXPECT_FALSE(Fn(S, 2));
  EXPECT_TRUE(Fn(S, 0));
}

TEST(MispredicateTest, PerfToOracleThreshold) {
  data::Sample S;
  S.OptionCosts = {1.0, 1.1, 2.0}; // perf: 1.0, 0.909, 0.5.
  MispredicateFn Fn = perfToOracleMispredicate(0.2);
  EXPECT_FALSE(Fn(S, 0));
  EXPECT_FALSE(Fn(S, 1)); // 0.909 >= 0.8.
  EXPECT_TRUE(Fn(S, 2));  // 0.5 < 0.8.
}

TEST(MispredicateTest, RegressionRelativeError) {
  EXPECT_FALSE(regressionMispredicted(1.1, 1.0));  // 10% off.
  EXPECT_TRUE(regressionMispredicted(1.5, 1.0));   // 50% off.
  EXPECT_TRUE(regressionMispredicted(0.5, 1e-12)); // Near-zero target.
}

//===----------------------------------------------------------------------===//
// Incremental learning (Sec. 5.4)
//===----------------------------------------------------------------------===//

TEST(IncrementalLearningTest, RecoversAccuracyUnderDrift) {
  support::Rng R(25);
  // Train on classes arranged one way; deployment rotates the layout so a
  // region of the input space flips label — honest concept drift.
  data::Dataset Full = gaussianBlobs(3, 260, 4.0, 0.7, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.15);
  ml::LogisticRegression Model = softLogReg();
  Model.fit(Train, R);

  // Deployment set: one class moved to a new region.
  data::Dataset Test("drifted", 3);
  for (int I = 0; I < 300; ++I) {
    data::Sample S;
    if (I % 3 == 0) {
      S.Features = {8.0 + R.gaussian(0.0, 0.7), 6.0 + R.gaussian(0.0, 0.7)};
      S.Label = 0;
    } else {
      S = gaussianBlobs(3, 1, 4.0, 0.7, R)[I % 3 == 1 ? 1u : 2u];
    }
    Test.add(std::move(S));
  }

  IncrementalConfig IlCfg;
  IlCfg.RelabelBudget = 0.05;
  IncrementalOutcome Out =
      runIncrementalLearning(Model, Train, Calib, Test, PromConfig(), IlCfg,
                             labelMispredicate(), R);

  EXPECT_GT(Out.NumFlagged, 0u);
  EXPECT_LE(Out.NumRelabeled,
            static_cast<size_t>(0.05 * Test.size() + 1.5));
  EXPECT_GT(Out.UpdatedAccuracy, Out.NativeAccuracy);
}

TEST(IncrementalLearningTest, DetectionCountsConsistent) {
  support::Rng R(26);
  data::Dataset Full = gaussianBlobs(3, 200, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.15);
  ml::LogisticRegression Model = softLogReg();
  Model.fit(Train, R);
  data::Dataset Test = gaussianBlobs(3, 60, 4.0, 0.8, R);

  IncrementalOutcome Out =
      runIncrementalLearning(Model, Train, Calib, Test, PromConfig(),
                             IncrementalConfig(), labelMispredicate(), R);
  EXPECT_EQ(Out.Detection.total(), Test.size());
  EXPECT_EQ(Out.NumFlagged, Out.Detection.TruePositive +
                                Out.Detection.FalsePositive);
}

TEST(IncrementalLearningTest, NoFlagsMeansNoUpdate) {
  support::Rng R(27);
  data::Dataset Full = gaussianBlobs(2, 250, 6.0, 0.4, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.15);
  ml::LogisticRegression Model = softLogReg();
  Model.fit(Train, R);
  // An easy in-distribution test set: flags should be rare; if none
  // appear, the model must be left untouched (NumRelabeled = 0).
  data::Dataset Test = gaussianBlobs(2, 40, 6.0, 0.4, R);
  IncrementalOutcome Out =
      runIncrementalLearning(Model, Train, Calib, Test, PromConfig(),
                             IncrementalConfig(), labelMispredicate(), R);
  if (Out.NumFlagged == 0)
    EXPECT_EQ(Out.NumRelabeled, 0u);
  EXPECT_NEAR(Out.UpdatedAccuracy, Out.NativeAccuracy, 0.1);
}

TEST(IncrementalLearningTest, RegressionFlavourReducesError) {
  support::Rng R(28);
  data::Dataset Train = linearRegression(400, 0.05, R);
  data::Dataset Calib = linearRegression(150, 0.05, R);
  ml::MlpRegressor Model;
  Model.fit(Train, R);

  // Deployment: a new input region with a different target relation.
  data::Dataset Test("reg-drift", 0);
  for (int I = 0; I < 200; ++I) {
    data::Sample S;
    double X0 = R.uniform(5.0, 8.0), X1 = R.uniform(5.0, 8.0);
    S.Features = {X0, X1};
    S.Target = 0.5 * X0 + X1;
    Test.add(std::move(S));
  }

  IncrementalConfig IlCfg;
  IlCfg.RelabelBudget = 0.05;
  IlCfg.OversampleFactor = 6;
  RegressionIncrementalOutcome Out = runIncrementalLearningRegression(
      Model, Train, Calib, Test, PromConfig(), IlCfg, R);
  EXPECT_GT(Out.NumFlagged, 0u);
  EXPECT_LT(Out.UpdatedError, Out.NativeError);
}

//===----------------------------------------------------------------------===//
// Baselines (Figure 10 comparators)
//===----------------------------------------------------------------------===//

namespace {

struct BaselineCase {
  const char *Name;
  std::function<std::unique_ptr<DriftDetector>()> Make;
};

class BaselineTest : public ::testing::TestWithParam<BaselineCase> {};

} // namespace

TEST_P(BaselineTest, FitsAndDecides) {
  support::Rng R(31);
  data::Dataset Full = gaussianBlobs(3, 220, 4.0, 0.9, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.25);
  ml::LogisticRegression Model = softLogReg();
  Model.fit(Train, R);

  auto Det = GetParam().Make();
  Det->fit(Model, Calib, R);

  // It must reject something on hard novel inputs and accept most
  // in-distribution ones.
  size_t FlaggedIn = 0, FlaggedNovel = 0;
  const size_t N = 120;
  for (size_t I = 0; I < N; ++I) {
    data::Sample In = gaussianBlobs(3, 1, 4.0, 0.9, R)[0];
    if (Det->isDrifting(In))
      ++FlaggedIn;
    data::Sample Novel;
    Novel.Features = {R.gaussian(0.0, 0.8), R.gaussian(0.0, 0.8)};
    Novel.Label = 0;
    if (Det->isDrifting(Novel))
      ++FlaggedNovel;
  }
  EXPECT_LT(FlaggedIn, N / 2) << GetParam().Name;
  EXPECT_GT(FlaggedNovel, FlaggedIn) << GetParam().Name;
}

INSTANTIATE_TEST_SUITE_P(
    Detectors, BaselineTest,
    ::testing::Values(
        BaselineCase{"NaiveCP",
                     [] {
                       return std::make_unique<
                           baselines::NaiveCpDetector>();
                     }},
        BaselineCase{"RISE",
                     [] { return std::make_unique<baselines::RiseDetector>(); }},
        BaselineCase{"TESSERACT",
                     [] {
                       return std::make_unique<
                           baselines::TesseractDetector>();
                     }},
        BaselineCase{"PROM",
                     [] { return std::make_unique<PromDriftDetector>(); }}),
    [](const ::testing::TestParamInfo<BaselineCase> &Info) {
      return Info.param.Name;
    });
