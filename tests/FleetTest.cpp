//===- tests/FleetTest.cpp - multi-tenant detector fleet ----------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The fleet contract: a tenant-tagged request through the shared
// AssessmentService + DetectorRegistry must produce a verdict
// bit-identical to a dedicated single-tenant service over the same
// calibrated detector — including after the registry evicts the tenant
// (snapshot saved) and lazily reloads it on the next request. The suite
// runs under PROM_THREADS=1 and =4 pins (see CMakeLists) like the other
// concurrency suites. Also covers LRU eviction under the memory budget,
// lease pinning, per-tenant stats splits, unknown-tenant shedding, and
// per-tenant recalibration controllers.
//
//===----------------------------------------------------------------------===//

#include "data/Split.h"
#include "ml/Linear.h"
#include "serve/AssessmentService.h"
#include "serve/DetectorRegistry.h"
#include "support/Serialize.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace prom;
using namespace prom::serve;
using prom::testing::expectSameVerdict;
using prom::testing::gaussianBlobs;

namespace {

/// A fresh, empty snapshot rotation directory. Suffixed by the
/// PROM_THREADS pin so the Threads1/Threads4 ctest variants running
/// concurrently never share state, and wiped of generations left by a
/// previous run (a stale `latest` would satisfy the first lazy load
/// with last run's calibration).
std::string freshSnapshotDir(const std::string &Name) {
  const char *Pin = std::getenv("PROM_THREADS");
  std::string Dir =
      ::testing::TempDir() + "/fleet_" + Name + "_" + (Pin ? Pin : "host");
  for (uint64_t Gen : support::listSnapshotGenerations(Dir))
    std::remove((Dir + "/" + support::snapshotGenerationFile(Gen)).c_str());
  std::remove((Dir + "/latest").c_str());
  return Dir;
}

/// One tenant's world: model, data, config, and a factory for identical
/// calibrated engines (calibration is deterministic, so two makeEngine()
/// results hold bit-identical state — one goes into the fleet, one backs
/// the dedicated reference service).
struct TenantFixture {
  support::Rng R;
  data::Dataset Train, Calib, Test;
  ml::LogisticRegression Model;
  PromConfig Cfg;

  TenantFixture(uint64_t Seed, int Classes) : R(Seed) {
    data::Dataset Full = gaussianBlobs(Classes, 150, 4.0, 0.8, R);
    auto Split = data::calibrationPartition(Full, R, 0.35);
    Train = std::move(Split.first);
    Calib = std::move(Split.second);
    Model.fit(Train, R);
    Cfg.NumShards = 2;
    Test = gaussianBlobs(Classes, 20, 4.0, 0.8, R);
    for (int I = 0; I < 10; ++I) {
      data::Sample Novel; // Off-manifold probes so some verdicts reject.
      Novel.Features = {R.gaussian(0.0, 0.6), R.gaussian(0.0, 0.6)};
      Novel.Label = 0;
      Test.add(std::move(Novel));
    }
  }

  std::unique_ptr<PromClassifier> makeEngine() const {
    auto E = std::make_unique<PromClassifier>(Model, Cfg);
    E->calibrate(Calib);
    return E;
  }

  TenantSpec spec(const std::string &SnapshotDir) const {
    TenantSpec S;
    S.Model = &Model;
    S.Cfg = Cfg;
    S.SnapshotDir = SnapshotDir;
    return S;
  }
};

TenantFixture &alphaFixture() {
  static TenantFixture F(101, 3);
  return F;
}

TenantFixture &betaFixture() {
  static TenantFixture F(202, 4);
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// The tentpole contract: shared-service verdicts == dedicated-service
// verdicts, bit for bit, across an evict -> snapshot-backed reload.
//===----------------------------------------------------------------------===//

TEST(FleetTest, TenantVerdictsBitIdenticalToDedicatedService) {
  TenantFixture &A = alphaFixture();
  TenantFixture &B = betaFixture();

  DetectorRegistry Registry;
  ASSERT_TRUE(Registry.registerTenant("alpha", A.spec(freshSnapshotDir("a"))));
  ASSERT_TRUE(Registry.registerTenant("beta", B.spec(freshSnapshotDir("b"))));
  ASSERT_TRUE(Registry.installDetector("alpha", A.makeEngine()));
  ASSERT_TRUE(Registry.installDetector("beta", B.makeEngine()));

  // Dedicated single-tenant services over identically calibrated engines.
  std::unique_ptr<PromClassifier> RefA = A.makeEngine();
  std::unique_ptr<PromClassifier> RefB = B.makeEngine();
  ServiceConfig Cfg;
  Cfg.MaxBatch = 8;
  Cfg.NumBatchers = 2;
  AssessmentService DedicatedA(*RefA, Cfg);
  AssessmentService DedicatedB(*RefB, Cfg);
  AssessmentService Shared(Registry, Cfg);

  // Interleave the two tenants through the shared service so batches
  // would mix them if the batcher did not group per tenant.
  auto RunRound = [&]() {
    std::vector<std::future<Verdict>> SharedA, SharedB, DedA, DedB;
    const size_t Rounds = std::max(A.Test.size(), B.Test.size());
    for (size_t I = 0; I < Rounds; ++I) {
      if (I < A.Test.size()) {
        SharedA.push_back(Shared.submit("alpha", A.Test[I]));
        DedA.push_back(DedicatedA.submit(A.Test[I]));
      }
      if (I < B.Test.size()) {
        SharedB.push_back(Shared.submit("beta", B.Test[I]));
        DedB.push_back(DedicatedB.submit(B.Test[I]));
      }
    }
    for (size_t I = 0; I < SharedA.size(); ++I)
      expectSameVerdict(DedA[I].get(), SharedA[I].get(), I);
    for (size_t I = 0; I < SharedB.size(); ++I)
      expectSameVerdict(DedB[I].get(), SharedB[I].get(), 1000 + I);
  };
  RunRound();

  // Evict both tenants (snapshot saved, engines destroyed) and run the
  // identical round again: the lazily reloaded detectors must land the
  // same bits. drain() first so no lease pins the tenants.
  Shared.drain();
  ASSERT_TRUE(Registry.evict("alpha"));
  ASSERT_TRUE(Registry.evict("beta"));
  EXPECT_FALSE(Registry.isLoaded("alpha"));
  EXPECT_FALSE(Registry.isLoaded("beta"));
  RunRound();
  EXPECT_TRUE(Registry.isLoaded("alpha"));
  EXPECT_TRUE(Registry.isLoaded("beta"));

  // Fleet bookkeeping: two installs, two evictions, two lazy reloads.
  RegistryStats RS = Registry.stats();
  EXPECT_EQ(RS.Installs, 2u);
  EXPECT_EQ(RS.Evictions, 2u);
  EXPECT_EQ(RS.Loads, 2u);
  EXPECT_EQ(RS.SnapshotsSaved, 2u);
  EXPECT_EQ(RS.LoadFailures, 0u);

  // Per-tenant stats split: every tagged request is accounted to its
  // tenant, and the splits sum to the fleet-wide counters.
  Shared.drain();
  ServiceStats SS = Shared.stats();
  ASSERT_EQ(SS.Tenants.count("alpha"), 1u);
  ASSERT_EQ(SS.Tenants.count("beta"), 1u);
  const TenantServiceStats &TA = SS.Tenants.at("alpha");
  const TenantServiceStats &TB = SS.Tenants.at("beta");
  EXPECT_EQ(TA.Submitted, 2 * A.Test.size());
  EXPECT_EQ(TB.Submitted, 2 * B.Test.size());
  EXPECT_EQ(TA.Completed, TA.Submitted);
  EXPECT_EQ(TB.Completed, TB.Submitted);
  EXPECT_EQ(TA.Submitted + TB.Submitted, SS.Submitted);
  EXPECT_EQ(TA.Completed + TB.Completed, SS.Completed);
  EXPECT_EQ(TA.DriftRejected + TB.DriftRejected, SS.DriftRejected);
  EXPECT_EQ(TA.Latency.Total + TB.Latency.Total, SS.Latency.Total);
  EXPECT_GE(TA.Batches, 1u);
  EXPECT_GE(TB.Batches, 1u);
}

//===----------------------------------------------------------------------===//
// Registry mechanics
//===----------------------------------------------------------------------===//

TEST(FleetTest, LruEvictionRespectsBudgetPinsAndPersistence) {
  TenantFixture &A = alphaFixture();

  // A 1-byte budget: any loaded detector is over it, so every
  // install/load evicts whatever else is evictable.
  RegistryConfig RCfg;
  RCfg.MemoryBudgetBytes = 1;
  DetectorRegistry Registry(RCfg);
  ASSERT_TRUE(Registry.registerTenant("t1", A.spec(freshSnapshotDir("t1"))));
  ASSERT_TRUE(Registry.registerTenant("t2", A.spec(freshSnapshotDir("t2"))));
  ASSERT_TRUE(Registry.registerTenant("mem", A.spec(""))); // No persistence.

  // The tenant being installed is never its own eviction victim.
  ASSERT_TRUE(Registry.installDetector("t1", A.makeEngine()));
  EXPECT_TRUE(Registry.isLoaded("t1"));

  // Installing t2 evicts LRU t1 (saved first).
  ASSERT_TRUE(Registry.installDetector("t2", A.makeEngine()));
  EXPECT_FALSE(Registry.isLoaded("t1"));
  EXPECT_TRUE(Registry.isLoaded("t2"));

  // Reloading t1 under a held lease evicts t2, never the pinned t1.
  {
    DetectorRegistry::Lease L1 = Registry.acquire("t1");
    ASSERT_TRUE(static_cast<bool>(L1));
    EXPECT_EQ(L1.tenant(), "t1");
    EXPECT_FALSE(Registry.isLoaded("t2"));

    // Loading t2 while t1 is pinned: both stay in memory (over budget is
    // preferred to evicting a pinned or unsaveable tenant)...
    DetectorRegistry::Lease L2 = Registry.acquire("t2");
    ASSERT_TRUE(static_cast<bool>(L2));
    EXPECT_TRUE(Registry.isLoaded("t1"));
    EXPECT_TRUE(Registry.isLoaded("t2"));

    // ...and an explicit evict of a pinned tenant is refused.
    EXPECT_FALSE(Registry.evict("t1"));
  }

  // A persistence-disabled tenant can never be evicted — not by the
  // budget sweep, not explicitly — because its state would be lost.
  ASSERT_TRUE(Registry.installDetector("mem", A.makeEngine()));
  EXPECT_FALSE(Registry.evict("mem"));
  DetectorRegistry::Lease L = Registry.acquire("t1"); // Budget sweep runs.
  ASSERT_TRUE(static_cast<bool>(L));
  EXPECT_TRUE(Registry.isLoaded("mem"));

  // Cold/unknown edges.
  EXPECT_FALSE(Registry.evict("t2") && Registry.evict("t2")); // Not twice.
  EXPECT_FALSE(Registry.evict("ghost"));
  EXPECT_FALSE(static_cast<bool>(Registry.acquire("ghost")));
  EXPECT_FALSE(Registry.save("ghost"));
  // "mem" has no snapshot dir: a save request must fail, not no-op.
  EXPECT_FALSE(Registry.save("mem"));

  RegistryStats RS = Registry.stats();
  EXPECT_EQ(RS.RegisteredTenants, 3u);
  EXPECT_GE(RS.Evictions, 2u);
  EXPECT_GT(RS.MemoryBytes, RCfg.MemoryBudgetBytes); // Pins win over budget.
}

TEST(FleetTest, AcquireWithoutSnapshotFailsCleanly) {
  TenantFixture &A = alphaFixture();
  DetectorRegistry Registry;
  // Registered but never installed and with an empty rotation dir: the
  // lazy load has nothing to resolve.
  ASSERT_TRUE(
      Registry.registerTenant("cold", A.spec(freshSnapshotDir("cold"))));
  EXPECT_FALSE(static_cast<bool>(Registry.acquire("cold")));
  EXPECT_EQ(Registry.stats().LoadFailures, 1u);
  // Duplicate registration and null-model specs are refused.
  EXPECT_FALSE(Registry.registerTenant("cold", A.spec("")));
  EXPECT_FALSE(Registry.registerTenant("nullmodel", TenantSpec()));
}

TEST(FleetTest, UnknownTenantShedsWithReason) {
  TenantFixture &A = alphaFixture();
  DetectorRegistry Registry;
  AssessmentService Shared(Registry, ServiceConfig());

  std::future<Verdict> Fut = Shared.submit("ghost", A.Test[0]);
  try {
    Fut.get();
    FAIL() << "unknown tenant must shed";
  } catch (const ShedError &E) {
    EXPECT_EQ(E.reason(), ShedReason::UnknownTenant);
  }
  Shared.drain();
  ServiceStats SS = Shared.stats();
  EXPECT_EQ(SS.ShedUnknownTenant, 1u);
  EXPECT_EQ(SS.shedTotal(), 1u);
  ASSERT_EQ(SS.Tenants.count("ghost"), 1u);
  EXPECT_EQ(SS.Tenants.at("ghost").Shed, 1u);
  EXPECT_EQ(SS.Tenants.at("ghost").Completed, 0u);
}

//===----------------------------------------------------------------------===//
// Per-tenant recalibration controllers
//===----------------------------------------------------------------------===//

TEST(FleetTest, PerTenantControllersRefreshAndSurviveReload) {
  TenantFixture &A = alphaFixture();
  DetectorRegistry Registry;
  const std::string Dir = freshSnapshotDir("recal");
  ASSERT_TRUE(Registry.registerTenant("alpha", A.spec(Dir)));
  ASSERT_TRUE(Registry.installDetector("alpha", A.makeEngine()));

  RecalibrationConfig RCfg;
  RCfg.MinRefreshSamples = 8; // SnapshotDir inherits the tenant's.
  ASSERT_TRUE(Registry.enableRecalibration("alpha", DriftWindowConfig(), RCfg));
  EXPECT_FALSE(Registry.enableRecalibration("ghost"));

  {
    DetectorRegistry::Lease L = Registry.acquire("alpha");
    ASSERT_TRUE(static_cast<bool>(L));
    ASSERT_NE(L.controller(), nullptr); // Armed on the live entry.
    ASSERT_NE(L.monitor(), nullptr);
    // An empty RecalibrationConfig::SnapshotDir inherits the tenant's.
    EXPECT_EQ(L.controller()->config().SnapshotDir, Dir);

    // Feed relabeled samples through the registry and trigger a refresh.
    for (size_t I = 0; I < 16; ++I)
      ASSERT_TRUE(Registry.submitLabeled("alpha", A.Calib[I]));
    L.controller()->triggerRefresh();
    EXPECT_TRUE(L.controller()->waitForRefreshes(
        1, std::chrono::milliseconds(5000)));
    EXPECT_GE(L.controller()->stats().SamplesFolded, 16u);
  }

  // Eviction tears the controller down with the engine; the reload arms
  // a fresh one against the restored state.
  ASSERT_TRUE(Registry.evict("alpha"));
  EXPECT_FALSE(Registry.submitLabeled("alpha", A.Calib[0])); // Cold tenant.
  DetectorRegistry::Lease L = Registry.acquire("alpha");
  ASSERT_TRUE(static_cast<bool>(L));
  EXPECT_NE(L.controller(), nullptr);
  EXPECT_EQ(L.controller()->stats().RefreshesCompleted, 0u); // Fresh.
  EXPECT_TRUE(Registry.submitLabeled("alpha", A.Calib[0]));
}
