//===- tests/NonconformityTest.cpp - scorer and calibration tests -------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Calibration.h"
#include "core/DriftMetrics.h"
#include "core/Nonconformity.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace prom;

//===----------------------------------------------------------------------===//
// Classification scorers
//===----------------------------------------------------------------------===//

TEST(LacTest, KnownValues) {
  LacScorer S;
  EXPECT_DOUBLE_EQ(S.score({0.7, 0.2, 0.1}, 0), 0.3);
  EXPECT_DOUBLE_EQ(S.score({0.7, 0.2, 0.1}, 2), 0.9);
}

TEST(LacTest, HigherForLessLikelyLabels) {
  LacScorer S;
  std::vector<double> P = {0.5, 0.3, 0.2};
  EXPECT_LT(S.score(P, 0), S.score(P, 1));
  EXPECT_LT(S.score(P, 1), S.score(P, 2));
}

TEST(TopKTest, OneHotGivesHardRank) {
  TopKScorer S;
  // On (near) one-hot distributions the soft rank equals the hard rank.
  EXPECT_NEAR(S.score({1.0, 0.0, 0.0}, 0), 1.0, 1e-9);
  EXPECT_NEAR(S.score({0.0, 1.0, 0.0}, 0), 2.0, 1.0);
}

TEST(TopKTest, FlatDistributionRaisesArgmaxRank) {
  TopKScorer S;
  double Sharp = S.score({0.98, 0.01, 0.01}, 0);
  double Flat = S.score({0.34, 0.33, 0.33}, 0);
  EXPECT_LT(Sharp, 1.1);
  EXPECT_GT(Flat, 2.5); // ~3 for a uniform 3-class distribution.
}

TEST(TopKTest, MonotoneInLabelProbability) {
  TopKScorer S;
  std::vector<double> P = {0.5, 0.3, 0.2};
  EXPECT_LT(S.score(P, 0), S.score(P, 1));
  EXPECT_LT(S.score(P, 1), S.score(P, 2));
}

TEST(ApsTest, HalfInclusionOfLabelMass) {
  ApsScorer S;
  // Top label: mass above = 0, plus half its own mass.
  EXPECT_NEAR(S.score({0.8, 0.15, 0.05}, 0), 0.4, 1e-9);
  // Second label: 0.8 above plus half of 0.15.
  EXPECT_NEAR(S.score({0.8, 0.15, 0.05}, 1), 0.875, 1e-9);
  // Third label: 0.95 above plus half of 0.05.
  EXPECT_NEAR(S.score({0.8, 0.15, 0.05}, 2), 0.975, 1e-9);
}

TEST(ApsTest, ConfidentModelDoesNotSaturate) {
  ApsScorer S;
  // The u=0.5 variant keeps calibration scores away from the degenerate
  // all-ties-at-1.0 regime for confident models.
  EXPECT_NEAR(S.score({1.0, 0.0, 0.0}, 0), 0.5, 1e-9);
}

TEST(RapsTest, PenaltyAboveApsForUncertainLabels) {
  ApsScorer Aps;
  RapsScorer Raps;
  std::vector<double> Flat = {0.34, 0.33, 0.33};
  EXPECT_GT(Raps.score(Flat, 0), Aps.score(Flat, 0));
  // Sharp argmax: soft rank ~1 < kReg, no penalty.
  std::vector<double> Sharp = {0.98, 0.01, 0.01};
  EXPECT_NEAR(Raps.score(Sharp, 0), Aps.score(Sharp, 0), 1e-6);
}

TEST(ApsRapsTest, ScoreAllMatchesPerLabelScoreOnTieHeavyVectors) {
  // The rank-from-one-sort scoreAll() must reproduce labelRank()'s
  // deterministic index tie-break bit for bit — stress it with repeated
  // probabilities and random vectors of several widths.
  ApsScorer Aps;
  RapsScorer Raps;
  support::Rng R(4242);
  std::vector<std::vector<double>> Cases = {
      {0.25, 0.25, 0.25, 0.25},
      {0.4, 0.2, 0.2, 0.2},
      {0.2, 0.2, 0.4, 0.2},
      {0.5, 0.5},
      {1.0},
  };
  for (int Trial = 0; Trial < 20; ++Trial) {
    size_t C = 2 + static_cast<size_t>(Trial % 7);
    std::vector<double> P(C);
    double Sum = 0.0;
    for (double &V : P) {
      // Quantized draws make exact ties likely.
      V = std::floor(R.uniform(0.0, 5.0)) + 0.5;
      Sum += V;
    }
    for (double &V : P)
      V /= Sum;
    Cases.push_back(P);
  }
  for (const std::vector<double> &P : Cases) {
    std::vector<double> AllAps(P.size()), AllRaps(P.size());
    Aps.scoreAll(P, AllAps.data());
    Raps.scoreAll(P, AllRaps.data());
    for (size_t L = 0; L < P.size(); ++L) {
      EXPECT_DOUBLE_EQ(AllAps[L], Aps.score(P, static_cast<int>(L)));
      EXPECT_DOUBLE_EQ(AllRaps[L], Raps.score(P, static_cast<int>(L)));
    }
  }
}

TEST(DefaultScorersTest, FourExpertsWithExpectedNames) {
  auto Scorers = defaultClassificationScorers();
  ASSERT_EQ(Scorers.size(), 4u);
  EXPECT_EQ(Scorers[0]->name(), "LAC");
  EXPECT_EQ(Scorers[1]->name(), "TopK");
  EXPECT_EQ(Scorers[2]->name(), "APS");
  EXPECT_EQ(Scorers[3]->name(), "RAPS");
}

//===----------------------------------------------------------------------===//
// Regression scorers
//===----------------------------------------------------------------------===//

TEST(RegressionScorersTest, ResidualFamilies) {
  RegressionScoreInput In;
  In.Prediction = 3.0;
  In.ApproxTarget = 1.0;
  In.KnnTargetSpread = 2.0;
  In.KnnMeanDistance = 7.0;
  In.ResidualIqr = 4.0;

  EXPECT_DOUBLE_EQ(AbsoluteResidualScorer().score(In), 2.0);
  EXPECT_NEAR(KnnNormalizedResidualScorer().score(In), 1.0, 1e-5);
  EXPECT_NEAR(IqrScaledResidualScorer().score(In), 0.5, 1e-5);
  EXPECT_DOUBLE_EQ(FeatureDistanceScorer().score(In), 7.0);
}

TEST(RegressionScorersTest, ZeroScaleIsSafe) {
  RegressionScoreInput In;
  In.Prediction = 1.0;
  In.ApproxTarget = 0.0;
  In.KnnTargetSpread = 0.0;
  In.ResidualIqr = 0.0;
  EXPECT_TRUE(std::isfinite(KnnNormalizedResidualScorer().score(In)));
  EXPECT_TRUE(std::isfinite(IqrScaledResidualScorer().score(In)));
}

TEST(RegressionScorersTest, DefaultCommittee) {
  auto Scorers = defaultRegressionScorers();
  ASSERT_EQ(Scorers.size(), 4u);
  EXPECT_EQ(Scorers[3]->name(), "FeatDist");
}

//===----------------------------------------------------------------------===//
// Calibration selection and p-values
//===----------------------------------------------------------------------===//

namespace {

/// Calibration set with entries at x = 0..N-1 (1-D), label = Labels[i],
/// single expert score = Scores[i].
CalibrationScores makeCalib(const std::vector<int> &Labels,
                            const std::vector<double> &Scores) {
  CalibrationScores Calib;
  for (size_t I = 0; I < Labels.size(); ++I) {
    CalibrationEntry E;
    E.Embed = {static_cast<double>(I)};
    E.Label = Labels[I];
    E.Scores = {Scores[I]};
    Calib.add(std::move(E));
  }
  Calib.finalize();
  return Calib;
}

} // namespace

TEST(CalibrationTest, SelectAllBelowThreshold) {
  CalibrationScores Calib = makeCalib({0, 0, 0, 0}, {1, 2, 3, 4});
  PromConfig Cfg;
  Cfg.SelectAllBelow = 200;
  CalibrationSelection Sel = Calib.select({0.0}, Cfg);
  EXPECT_EQ(Sel.Indices.size(), 4u); // Fewer than 200: keep all.
}

TEST(CalibrationTest, SelectsNearestFraction) {
  std::vector<int> Labels(300, 0);
  std::vector<double> Scores(300, 1.0);
  CalibrationScores Calib = makeCalib(Labels, Scores);
  PromConfig Cfg;
  Cfg.SelectFraction = 0.5;
  Cfg.SelectAllBelow = 200;
  CalibrationSelection Sel = Calib.select({0.0}, Cfg);
  EXPECT_EQ(Sel.Indices.size(), 150u);
  // The nearest entries are those with the smallest ids (x = index).
  for (size_t Idx : Sel.Indices)
    EXPECT_LT(Idx, 150u);
  // Closest-first ordering.
  EXPECT_EQ(Sel.Indices.front(), 0u);
}

TEST(CalibrationTest, WeightsDecayWithDistance) {
  std::vector<int> Labels(300, 0);
  std::vector<double> Scores(300, 1.0);
  CalibrationScores Calib = makeCalib(Labels, Scores);
  PromConfig Cfg;
  Cfg.AutoTau = false;
  Cfg.Tau = 50.0;
  CalibrationSelection Sel = Calib.select({0.0}, Cfg);
  ASSERT_GE(Sel.Indices.size(), 2u);
  EXPECT_GT(Sel.Weights.front(), Sel.Weights.back());
  EXPECT_NEAR(Sel.Weights.front(), 1.0, 0.05);
}

TEST(CalibrationTest, NoneModeGivesUnitWeights) {
  CalibrationScores Calib = makeCalib({0, 0, 0}, {1, 2, 3});
  PromConfig Cfg;
  Cfg.WeightMode = CalibrationWeightMode::None;
  CalibrationSelection Sel = Calib.select({0.0}, Cfg);
  for (double W : Sel.Weights)
    EXPECT_DOUBLE_EQ(W, 1.0);
}

TEST(CalibrationTest, PValueCountsGreaterEqual) {
  // Scores 1..5 for label 0; test score 3 -> 3 of 5 calibration scores are
  // >= 3; smoothed p = (3+1)/(5+1).
  CalibrationScores Calib = makeCalib({0, 0, 0, 0, 0}, {1, 2, 3, 4, 5});
  PromConfig Cfg;
  Cfg.WeightMode = CalibrationWeightMode::None;
  CalibrationSelection Sel = Calib.select({2.0}, Cfg);
  std::vector<double> P = Calib.pValues(Sel, 0, {3.0}, Cfg);
  EXPECT_NEAR(P[0], 4.0 / 6.0, 1e-12);
}

TEST(CalibrationTest, PValueUnsmoothed) {
  CalibrationScores Calib = makeCalib({0, 0, 0, 0, 0}, {1, 2, 3, 4, 5});
  PromConfig Cfg;
  Cfg.WeightMode = CalibrationWeightMode::None;
  Cfg.SmoothedPValues = false;
  CalibrationSelection Sel = Calib.select({2.0}, Cfg);
  std::vector<double> P = Calib.pValues(Sel, 0, {3.0}, Cfg);
  EXPECT_NEAR(P[0], 3.0 / 5.0, 1e-12);
}

TEST(CalibrationTest, ClassConditionalCounting) {
  // Two labels with very different score scales.
  CalibrationScores Calib =
      makeCalib({0, 0, 1, 1}, {0.1, 0.2, 10.0, 20.0});
  PromConfig Cfg;
  Cfg.WeightMode = CalibrationWeightMode::None;
  CalibrationSelection Sel = Calib.select({0.0}, Cfg);
  std::vector<double> P = Calib.pValues(Sel, 0, {0.15, 15.0}, Cfg);
  EXPECT_NEAR(P[0], (1.0 + 1.0) / 3.0, 1e-12); // One of two >= 0.15.
  EXPECT_NEAR(P[1], (1.0 + 1.0) / 3.0, 1e-12); // One of two >= 15.
}

TEST(CalibrationTest, MissingLabelGetsZeroPValue) {
  CalibrationScores Calib = makeCalib({0, 0}, {1.0, 2.0});
  PromConfig Cfg;
  CalibrationSelection Sel = Calib.select({0.0}, Cfg);
  std::vector<double> P = Calib.pValues(Sel, 0, {1.0, 1.0}, Cfg);
  EXPECT_DOUBLE_EQ(P[1], 0.0); // No label-1 calibration evidence.
}

TEST(CalibrationTest, ScoreScalingShrinksDistantEvidence) {
  // With score scaling, a distant test point sees all calibration scores
  // shrunk, so a moderate test score tops them -> low p-value. Near test
  // points keep weights ~1 and the same score stays conforming.
  std::vector<int> Labels(50, 0);
  std::vector<double> Scores(50, 1.0);
  CalibrationScores Calib = makeCalib(Labels, Scores);
  PromConfig Cfg;
  Cfg.WeightMode = CalibrationWeightMode::ScoreScaling;
  Cfg.AutoTau = false;
  Cfg.Tau = 200.0;

  CalibrationSelection Near = Calib.select({0.0}, Cfg);
  CalibrationSelection Far = Calib.select({500.0}, Cfg);
  std::vector<double> PNear = Calib.pValues(Near, 0, {0.7}, Cfg);
  std::vector<double> PFar = Calib.pValues(Far, 0, {0.7}, Cfg);
  EXPECT_GT(PNear[0], 0.9);
  EXPECT_LT(PFar[0], 0.1);
}

TEST(CalibrationTest, DiscreteFallbackPreservesTies) {
  // Discrete scores (all equal): ScoreScaling would flip every tie, the
  // discrete fallback keeps them.
  std::vector<int> Labels(50, 0);
  std::vector<double> Scores(50, 1.0);
  CalibrationScores Calib = makeCalib(Labels, Scores);
  PromConfig Cfg;
  Cfg.WeightMode = CalibrationWeightMode::ScoreScaling;
  CalibrationSelection Sel = Calib.select({25.0}, Cfg);
  std::vector<double> P =
      Calib.pValues(Sel, 0, {1.0}, Cfg, /*DiscreteScores=*/true);
  EXPECT_GT(P[0], 0.9);
}

TEST(CalibrationTest, FinalizeComputesDistanceScale) {
  CalibrationScores Calib = makeCalib({0, 0, 0}, {1, 2, 3});
  EXPECT_NEAR(Calib.medianNNDist(), 1.0, 1e-9); // Unit-spaced 1-D points.
}

//===----------------------------------------------------------------------===//
// Confidence function (Sec. 5.3) — also Figure 13(c)'s closed form.
//===----------------------------------------------------------------------===//

TEST(ConfidenceTest, PeaksAtSingleton) {
  EXPECT_DOUBLE_EQ(confidenceFromSetSize(1, 3.0), 1.0);
  EXPECT_LT(confidenceFromSetSize(0, 3.0), 1.0);
  EXPECT_LT(confidenceFromSetSize(2, 3.0), 1.0);
}

TEST(ConfidenceTest, SymmetricAroundOne) {
  EXPECT_DOUBLE_EQ(confidenceFromSetSize(0, 2.0),
                   confidenceFromSetSize(2, 2.0));
}

TEST(ConfidenceTest, MonotoneDecreasingAwayFromOne) {
  for (size_t Size = 1; Size < 6; ++Size)
    EXPECT_GT(confidenceFromSetSize(Size, 3.0),
              confidenceFromSetSize(Size + 1, 3.0));
}

TEST(ConfidenceTest, LargerScaleIsMoreTolerant) {
  EXPECT_LT(confidenceFromSetSize(4, 1.0), confidenceFromSetSize(4, 4.0));
}

TEST(ConfidenceTest, KnownGaussianValue) {
  // exp(-(3-1)^2 / (2*3^2)) = exp(-4/18).
  EXPECT_NEAR(confidenceFromSetSize(3, 3.0), std::exp(-4.0 / 18.0), 1e-12);
}

//===----------------------------------------------------------------------===//
// DetectionCounts
//===----------------------------------------------------------------------===//

TEST(DetectionCountsTest, RecordRoutesToQuadrants) {
  DetectionCounts C;
  C.record(true, true);   // TP
  C.record(true, false);  // FN
  C.record(false, true);  // FP
  C.record(false, false); // TN
  EXPECT_EQ(C.TruePositive, 1u);
  EXPECT_EQ(C.FalseNegative, 1u);
  EXPECT_EQ(C.FalsePositive, 1u);
  EXPECT_EQ(C.TrueNegative, 1u);
  EXPECT_DOUBLE_EQ(C.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(C.precision(), 0.5);
  EXPECT_DOUBLE_EQ(C.recall(), 0.5);
  EXPECT_DOUBLE_EQ(C.f1(), 0.5);
  EXPECT_DOUBLE_EQ(C.falsePositiveRate(), 0.5);
  EXPECT_DOUBLE_EQ(C.falseNegativeRate(), 0.5);
}

TEST(DetectionCountsTest, PerfectDetector) {
  DetectionCounts C;
  for (int I = 0; I < 10; ++I) {
    C.record(true, true);
    C.record(false, false);
  }
  EXPECT_DOUBLE_EQ(C.f1(), 1.0);
  EXPECT_DOUBLE_EQ(C.falsePositiveRate(), 0.0);
}

TEST(DetectionCountsTest, DegenerateDenominators) {
  DetectionCounts C;
  C.record(false, false);
  EXPECT_DOUBLE_EQ(C.precision(), 1.0); // No rejections.
  EXPECT_DOUBLE_EQ(C.recall(), 1.0);    // No mispredictions.
  EXPECT_DOUBLE_EQ(C.falseNegativeRate(), 0.0);
}

TEST(DetectionCountsTest, MergeAccumulates) {
  DetectionCounts A, B;
  A.record(true, true);
  B.record(false, true);
  A.merge(B);
  EXPECT_EQ(A.TruePositive, 1u);
  EXPECT_EQ(A.FalsePositive, 1u);
  EXPECT_EQ(A.total(), 2u);
}
