//===- tests/ServeTest.cpp - async serving runtime ----------------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The AssessmentService must be a scheduling layer, nothing more: a
// verdict served through the queue + micro-batcher is bit-identical to a
// direct assessBatch() verdict for the same sample. Also covers deadline
// flushes of short batches, concurrent submitters, drain/shutdown
// semantics, and the WindowedDriftMonitor's sliding-window counters and
// rising-edge recalibration alerts.
//
//===----------------------------------------------------------------------===//

#include "data/Split.h"
#include "ml/Linear.h"
#include "serve/AssessmentService.h"
#include "serve/RecalibrationController.h"
#include "serve/WindowedDriftMonitor.h"
#include "support/Serialize.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace prom;
using namespace prom::serve;
using prom::testing::expectSameVerdict;
using prom::testing::gaussianBlobs;

namespace {

/// Shared calibrated engine.
struct EngineFixture {
  support::Rng R{63};
  data::Dataset Train, Calib, Test;
  ml::LogisticRegression Model;
  std::unique_ptr<PromClassifier> Prom;

  EngineFixture() {
    data::Dataset Full = gaussianBlobs(3, 220, 4.0, 0.8, R);
    auto Split = data::calibrationPartition(Full, R, 0.35);
    Train = std::move(Split.first);
    Calib = std::move(Split.second);
    Model.fit(Train, R);
    PromConfig Cfg;
    Cfg.NumShards = 4;
    Prom = std::make_unique<PromClassifier>(Model, Cfg);
    Prom->calibrate(Calib);

    Test = gaussianBlobs(3, 30, 4.0, 0.8, R);
    for (int I = 0; I < 30; ++I) {
      data::Sample Novel;
      Novel.Features = {R.gaussian(0.0, 0.7), R.gaussian(0.0, 0.7)};
      Novel.Label = 0;
      Test.add(std::move(Novel));
    }
  }
};

EngineFixture &fixture() {
  static EngineFixture F;
  return F;
}

Verdict fakeVerdict(bool Drifted) {
  Verdict V;
  V.Predicted = 0;
  V.Drifted = Drifted;
  return V;
}

} // namespace

TEST(ServeTest, ServedVerdictsMatchDirectBitIdentical) {
  EngineFixture &F = fixture();
  std::vector<Verdict> Direct = F.Prom->assessBatch(F.Test);

  ServiceConfig Cfg;
  Cfg.MaxBatch = 16;
  Cfg.FlushDeadline = std::chrono::microseconds(500);
  Cfg.NumBatchers = 2;
  AssessmentService Svc(*F.Prom, Cfg);

  std::vector<std::future<Verdict>> Futures;
  for (const data::Sample &S : F.Test.samples())
    Futures.push_back(Svc.submit(S));
  for (size_t I = 0; I < Futures.size(); ++I)
    expectSameVerdict(Direct[I], Futures[I].get(), I);

  // Promises resolve before the batcher banks its stats; drain() waits
  // for the full batch epilogue.
  Svc.drain();
  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.Submitted, F.Test.size());
  EXPECT_EQ(Stats.Completed, F.Test.size());
  EXPECT_GE(Stats.Batches, 1u);
  EXPECT_GE(Stats.meanBatchSize(), 1.0);
}

TEST(ServeTest, DeadlineFlushesShortBatches) {
  EngineFixture &F = fixture();

  ServiceConfig Cfg;
  Cfg.MaxBatch = 64; // Far larger than what we submit.
  Cfg.FlushDeadline = std::chrono::microseconds(200);
  AssessmentService Svc(*F.Prom, Cfg);

  std::vector<std::future<Verdict>> Futures;
  for (size_t I = 0; I < 3; ++I)
    Futures.push_back(Svc.submit(F.Test[I]));
  for (auto &Fut : Futures)
    Fut.get(); // Must resolve without 61 more requests arriving.
  EXPECT_GE(Svc.stats().DeadlineFlushes, 1u);
}

TEST(ServeTest, ConcurrentSubmittersAllServed) {
  EngineFixture &F = fixture();

  ServiceConfig Cfg;
  Cfg.MaxBatch = 8;
  Cfg.NumBatchers = 2;
  AssessmentService Svc(*F.Prom, Cfg);

  constexpr size_t Clients = 4, PerClient = 40;
  std::atomic<size_t> Resolved{0};
  std::vector<std::thread> Threads;
  for (size_t C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      for (size_t I = 0; I < PerClient; ++I) {
        size_t Idx = (C * PerClient + I) % F.Test.size();
        std::future<Verdict> Fut = Svc.submit(F.Test[Idx]);
        Verdict V = Fut.get();
        if (V.Experts.size() == F.Prom->numExperts())
          ++Resolved;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Resolved.load(), Clients * PerClient);

  Svc.drain();
  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.Submitted, Clients * PerClient);
  EXPECT_EQ(Stats.Completed, Clients * PerClient);
}

TEST(ServeTest, ShutdownDrainsAndRejectsLateSubmits) {
  EngineFixture &F = fixture();

  auto Svc = std::make_unique<AssessmentService>(*F.Prom);
  std::vector<std::future<Verdict>> Futures;
  for (size_t I = 0; I < 10; ++I)
    Futures.push_back(Svc->submit(F.Test[I]));
  Svc->shutdown();
  for (auto &Fut : Futures)
    EXPECT_NO_THROW(Fut.get()); // Accepted before shutdown => answered.

  // The unified post-shutdown contract: submit() resolves the future
  // with ShedError{Shutdown} (a runtime_error, so reason-agnostic
  // callers still just see a failure), trySubmit() returns false.
  std::future<Verdict> Late = Svc->submit(F.Test[0]);
  try {
    Late.get();
    FAIL() << "post-shutdown submit must fail the future";
  } catch (const ShedError &E) {
    EXPECT_EQ(E.reason(), ShedReason::Shutdown);
  }
  EXPECT_EQ(Svc->stats().ShedShutdown, 1u);

  std::future<Verdict> TryLate;
  EXPECT_FALSE(Svc->trySubmit(F.Test[0], TryLate));
}

TEST(ServeTest, DrainIsSafeConcurrentWithShutdown) {
  EngineFixture &F = fixture();

  for (int Round = 0; Round < 4; ++Round) {
    AssessmentService Svc(*F.Prom);
    std::vector<std::future<Verdict>> Futures;
    for (size_t I = 0; I < 24; ++I)
      Futures.push_back(Svc.submit(F.Test[I % F.Test.size()]));

    // drain() from several threads racing one shutdown(): every call
    // must return (no deadlock, no missed wakeup) and every accepted
    // request must still resolve with a verdict.
    std::vector<std::thread> Drainers;
    for (int D = 0; D < 3; ++D)
      Drainers.emplace_back([&] { Svc.drain(); });
    std::thread Stopper([&] { Svc.shutdown(); });
    for (std::thread &T : Drainers)
      T.join();
    Stopper.join();
    for (auto &Fut : Futures)
      EXPECT_NO_THROW(Fut.get());
  }

  // The never-started flavor: a paused service's queue is shed at
  // shutdown; concurrent drain() must wake rather than hang.
  ServiceConfig Cfg;
  Cfg.StartPaused = true;
  AssessmentService Paused(*F.Prom, Cfg);
  std::future<Verdict> Parked = Paused.submit(F.Test[0]);
  std::thread Drainer([&] { Paused.drain(); });
  Paused.shutdown();
  Drainer.join();
  try {
    Parked.get();
    FAIL() << "queued request on a never-started service must be shed";
  } catch (const ShedError &E) {
    EXPECT_EQ(E.reason(), ShedReason::Shutdown);
  }
}

//===----------------------------------------------------------------------===//
// Overload control: shed policies, deadlines, latency accounting
//===----------------------------------------------------------------------===//

TEST(ServeTest, RejectNewestShedsWhenQueueIsFull) {
  EngineFixture &F = fixture();

  // Paused batchers keep the queue from draining, so admission control is
  // tested in isolation.
  ServiceConfig Cfg;
  Cfg.QueueCapacity = 2;
  Cfg.MaxBatch = 4;
  Cfg.Shed = ShedPolicy::RejectNewest;
  Cfg.StartPaused = true;
  AssessmentService Svc(*F.Prom, Cfg);

  std::future<Verdict> A = Svc.submit(F.Test[0]);
  std::future<Verdict> B = Svc.submit(F.Test[1]);
  std::future<Verdict> C = Svc.submit(F.Test[2]); // Queue full: shed, fast.
  try {
    C.get();
    FAIL() << "third submit must shed";
  } catch (const ShedError &E) {
    EXPECT_EQ(E.reason(), ShedReason::QueueFull);
  }

  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.Submitted, 2u);
  EXPECT_EQ(Stats.ShedQueueFull, 1u);

  Svc.start();
  EXPECT_NO_THROW(A.get());
  EXPECT_NO_THROW(B.get());
  Svc.drain();
  Stats = Svc.stats();
  EXPECT_EQ(Stats.Completed, 2u);
  EXPECT_EQ(Stats.shedTotal(), 1u);
}

TEST(ServeTest, DeadlineAwareEvictsExpiredToAdmitLiveWork) {
  EngineFixture &F = fixture();

  ServiceConfig Cfg;
  Cfg.QueueCapacity = 2;
  Cfg.Shed = ShedPolicy::DeadlineAware;
  Cfg.StartPaused = true;
  AssessmentService Svc(*F.Prom, Cfg);

  // Two requests with microscopic budgets fill the queue...
  std::future<Verdict> A =
      Svc.submitWithDeadline(F.Test[0], std::chrono::microseconds(1));
  std::future<Verdict> B =
      Svc.submitWithDeadline(F.Test[1], std::chrono::microseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // ...and the next arrival evicts them instead of being refused: the
  // queue's capacity goes to work that can still meet its deadline.
  std::future<Verdict> C =
      Svc.submitWithDeadline(F.Test[2], std::chrono::seconds(10));
  for (auto *Fut : {&A, &B}) {
    try {
      Fut->get();
      FAIL() << "expired queued request must be shed";
    } catch (const ShedError &E) {
      EXPECT_EQ(E.reason(), ShedReason::DeadlineExpired);
    }
  }

  Svc.start();
  EXPECT_NO_THROW(C.get());
  Svc.drain();
  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.ShedExpired, 2u);
  EXPECT_EQ(Stats.Completed, 1u);
  // meanBatchSize counts only assessed requests: one batch, one verdict.
  EXPECT_DOUBLE_EQ(Stats.meanBatchSize(), 1.0);
}

TEST(ServeTest, ExpiredRequestsAreShedAtBatchPick) {
  EngineFixture &F = fixture();

  // Block policy: nothing is shed at admission, but requests whose
  // deadline ran out while queued must be shed at pick time instead of
  // burning engine work.
  ServiceConfig Cfg;
  Cfg.Shed = ShedPolicy::Block;
  Cfg.StartPaused = true;
  AssessmentService Svc(*F.Prom, Cfg);

  std::vector<std::future<Verdict>> Doomed;
  for (size_t I = 0; I < 4; ++I)
    Doomed.push_back(
        Svc.submitWithDeadline(F.Test[I], std::chrono::milliseconds(1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  Svc.start();
  for (auto &Fut : Doomed) {
    try {
      Fut.get();
      FAIL() << "request expired in queue must be shed at pick";
    } catch (const ShedError &E) {
      EXPECT_EQ(E.reason(), ShedReason::DeadlineExpired);
    }
  }
  Svc.drain();
  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.ShedExpired, 4u);
  EXPECT_EQ(Stats.Completed, 0u);
  // An expired-only pick forms no batch: the engine never ran, and the
  // batch-size accounting is not diluted by shed requests.
  EXPECT_EQ(Stats.Batches, 0u);
  EXPECT_DOUBLE_EQ(Stats.meanBatchSize(), 0.0);

  // A non-positive budget sheds at admission without queueing.
  std::future<Verdict> Immediate =
      Svc.submitWithDeadline(F.Test[0], std::chrono::microseconds(0));
  EXPECT_THROW(Immediate.get(), ShedError);
  EXPECT_EQ(Svc.stats().ShedExpired, 5u);
}

TEST(ServeTest, ServedVerdictsBitIdenticalUnderOverload) {
  EngineFixture &F = fixture();
  std::vector<Verdict> Direct = F.Prom->assessBatch(F.Test);

  // A queue far smaller than the burst, so a large fraction of submits
  // races admission against the batchers: every request must resolve —
  // with a verdict bit-identical to the direct one, or an explicit shed —
  // and the counters must account for every single submit.
  ServiceConfig Cfg;
  Cfg.QueueCapacity = 8;
  Cfg.MaxBatch = 4;
  Cfg.NumBatchers = 2;
  Cfg.Shed = ShedPolicy::DeadlineAware;
  AssessmentService Svc(*F.Prom, Cfg);

  constexpr size_t Clients = 4, PerClient = 60;
  std::atomic<size_t> Served{0}, Shed{0};
  std::vector<std::thread> Threads;
  for (size_t C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      for (size_t I = 0; I < PerClient; ++I) {
        size_t Idx = (C * PerClient + I) % F.Test.size();
        std::future<Verdict> Fut = Svc.submitWithDeadline(
            F.Test[Idx], std::chrono::milliseconds(200));
        try {
          Verdict V = Fut.get();
          expectSameVerdict(Direct[Idx], V, Idx);
          ++Served;
        } catch (const ShedError &) {
          ++Shed;
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Served.load() + Shed.load(), Clients * PerClient);

  Svc.drain();
  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.Completed, Served.load());
  EXPECT_EQ(Stats.shedTotal(), Shed.load());
  EXPECT_EQ(Stats.Completed + Stats.shedTotal(), Clients * PerClient);
  // Latency is recorded for every completed request, none of the shed.
  EXPECT_EQ(Stats.Latency.Total, Stats.Completed);
}

TEST(ServeTest, LatencyHistogramQuantilesAreOrderedAndBucketed) {
  LatencyHistogram H;
  EXPECT_DOUBLE_EQ(H.quantileUs(0.5), 0.0); // Empty: no observations.

  // 90 fast observations and 10 slow ones: the median must sit in the
  // fast bucket, the deep tail in the slow one, and quantiles must be
  // monotone.
  for (int I = 0; I < 90; ++I)
    H.record(100.0);
  for (int I = 0; I < 10; ++I)
    H.record(50000.0);
  EXPECT_EQ(H.Total, 100u);
  EXPECT_GT(H.p50Us(), 64.0);
  EXPECT_LT(H.p50Us(), 256.0); // ~one sqrt(2) bucket around 100us.
  EXPECT_GT(H.p999Us(), 16000.0);
  EXPECT_LE(H.p50Us(), H.p99Us());
  EXPECT_LE(H.p99Us(), H.p999Us());

  // Merge keeps totals and tail mass.
  LatencyHistogram Sum;
  Sum += H;
  Sum += H;
  EXPECT_EQ(Sum.Total, 200u);
  EXPECT_GT(Sum.p999Us(), 16000.0);
}

TEST(ServeTest, ServiceFoldsVerdictsIntoMonitor) {
  EngineFixture &F = fixture();

  WindowedDriftMonitor Monitor(DriftWindowConfig{64, 0.9, 8});
  ServiceConfig Cfg;
  Cfg.MaxBatch = 16;
  AssessmentService Svc(*F.Prom, Cfg, &Monitor);

  std::vector<std::future<Verdict>> Futures;
  for (const data::Sample &S : F.Test.samples())
    Futures.push_back(Svc.submit(S));
  size_t Rejected = 0;
  for (auto &Fut : Futures)
    Rejected += Fut.get().Drifted ? 1 : 0;
  Svc.drain();

  DriftWindowSnapshot Snap = Monitor.snapshot();
  EXPECT_EQ(Snap.TotalSeen, F.Test.size());
  EXPECT_EQ(Snap.WindowFill, std::min<size_t>(F.Test.size(), 64));
  EXPECT_EQ(Svc.stats().DriftRejected, Rejected);
}

//===----------------------------------------------------------------------===//
// Automatic recalibration (RecalibrationController)
//===----------------------------------------------------------------------===//

TEST(ServeTest, AutomaticRecalibrationSwapServesEveryRequest) {
  // A drifting stream must trip the monitor, trigger a background
  // incremental refresh + atomic store swap + snapshot rotation — and not
  // a single request may fail or be dropped across the swap.
  support::Rng R(171);
  data::Dataset Full = gaussianBlobs(3, 220, 4.0, 0.8, R);
  auto Split = data::calibrationPartition(Full, R, 0.35);
  ml::LogisticRegression Model;
  Model.fit(Split.first, R);
  PromConfig Cfg;
  Cfg.NumShards = 4;
  PromClassifier Prom(Model, Cfg);
  Prom.calibrate(Split.second);
  size_t SizeBefore = Prom.calibrationSize();

  auto NovelSample = [&R] {
    data::Sample S;
    S.Features = {R.gaussian(0.0, 0.5), R.gaussian(0.0, 0.5)};
    S.Label = 0;
    return S;
  };

  WindowedDriftMonitor Monitor(DriftWindowConfig{64, 0.3, 32});
  RecalibrationConfig RCfg;
  RCfg.MinRefreshSamples = 16;
  RCfg.SnapshotDir = ::testing::TempDir() + "/serve_rotation";
  RCfg.KeepGenerations = 2;
  RecalibrationController Controller(Prom, Monitor, RCfg);

  // The relabeling pipeline has already queued fresh ground truth for the
  // drifting inputs when the alarm goes off.
  for (int I = 0; I < 64; ++I)
    Controller.submitLabeled(NovelSample());

  ServiceConfig SvcCfg;
  SvcCfg.MaxBatch = 16;
  SvcCfg.NumBatchers = 2;
  AssessmentService Svc(Prom, SvcCfg, &Monitor);

  // A drifting stream: far off the calibrated blobs, so the windowed
  // rejection rate crosses the alert threshold mid-stream.
  std::vector<std::future<Verdict>> Futures;
  for (int I = 0; I < 256; ++I)
    Futures.push_back(Svc.submit(NovelSample()));

  size_t Served = 0;
  for (auto &Fut : Futures) {
    Verdict V;
    ASSERT_NO_THROW(V = Fut.get());
    ASSERT_EQ(V.Experts.size(), Prom.numExperts());
    ++Served;
  }
  EXPECT_EQ(Served, Futures.size());

  ASSERT_TRUE(Controller.waitForRefreshes(1, std::chrono::milliseconds(10000)));
  RecalibrationStats Stats = Controller.stats();
  EXPECT_GE(Stats.AlertsSeen, 1u);
  EXPECT_GE(Stats.RefreshesCompleted, 1u);
  EXPECT_EQ(Stats.SamplesFolded, 64u);
  EXPECT_EQ(Prom.calibrationSize(), SizeBefore + 64);
  EXPECT_GE(Stats.SnapshotsRotated, 1u);
  EXPECT_EQ(Stats.SnapshotFailures, 0u);

  // The rotated snapshot must resolve and load.
  std::string Latest = support::resolveLatestSnapshot(RCfg.SnapshotDir);
  ASSERT_FALSE(Latest.empty());
  PromClassifier Restored(Model);
  EXPECT_TRUE(Restored.loadSnapshot(Latest));
  EXPECT_EQ(Restored.calibrationSize(), Prom.calibrationSize());

  // Post-swap serving must agree with direct calls on the refreshed
  // store, bit for bit (no pending labels remain, so the store is stable).
  Svc.drain();
  data::Dataset Probe = gaussianBlobs(3, 24, 4.0, 0.8, R);
  std::vector<Verdict> Direct = Prom.assessBatch(Probe);
  std::vector<std::future<Verdict>> ProbeFutures;
  for (const data::Sample &S : Probe.samples())
    ProbeFutures.push_back(Svc.submit(S));
  for (size_t I = 0; I < ProbeFutures.size(); ++I)
    expectSameVerdict(Direct[I], ProbeFutures[I].get(), I);

  Svc.shutdown();
  ServiceStats SvcStats = Svc.stats();
  EXPECT_EQ(SvcStats.Submitted, SvcStats.Completed); // Zero dropped.
}

//===----------------------------------------------------------------------===//
// WindowedDriftMonitor unit behavior
//===----------------------------------------------------------------------===//

TEST(ServeTest, MonitorRaisesAlertOnRisingEdgeOnly) {
  DriftWindowConfig Cfg;
  Cfg.WindowSize = 20;
  Cfg.AlertRejectRate = 0.5;
  Cfg.MinFill = 10;
  WindowedDriftMonitor Monitor(Cfg);

  // Below MinFill: no alert even at 100% rejection.
  for (int I = 0; I < 9; ++I)
    Monitor.record(fakeVerdict(true));
  EXPECT_FALSE(Monitor.alertActive());
  EXPECT_EQ(Monitor.alertsRaised(), 0u);

  // Crossing MinFill with a high rate: one rising edge.
  Monitor.record(fakeVerdict(true));
  EXPECT_TRUE(Monitor.alertActive());
  EXPECT_EQ(Monitor.alertsRaised(), 1u);

  // Staying above threshold does not re-raise.
  for (int I = 0; I < 5; ++I)
    Monitor.record(fakeVerdict(true));
  EXPECT_EQ(Monitor.alertsRaised(), 1u);

  // A clean stretch slides the rejections out of the window.
  for (int I = 0; I < 25; ++I)
    Monitor.record(fakeVerdict(false));
  EXPECT_FALSE(Monitor.alertActive());
  EXPECT_EQ(Monitor.rejectRate(), 0.0);

  // A second excursion is a second alert.
  for (int I = 0; I < 20; ++I)
    Monitor.record(fakeVerdict(true));
  EXPECT_TRUE(Monitor.alertActive());
  EXPECT_EQ(Monitor.alertsRaised(), 2u);
}

TEST(ServeTest, AlertCallbackSelfUnsubscribesDuringAlert) {
  DriftWindowConfig Cfg;
  Cfg.WindowSize = 8;
  Cfg.MinFill = 4;
  Cfg.AlertRejectRate = 0.5;
  WindowedDriftMonitor Monitor(Cfg);

  // The callback unsubscribes itself from inside its own invocation —
  // the documented self-unsubscribe path through the recursive callback
  // lock. Only the first rising edge may be delivered; the edges keep
  // being counted regardless.
  size_t Calls = 0;
  Monitor.setAlertCallback([&](const DriftWindowSnapshot &Snap) {
    ++Calls;
    EXPECT_TRUE(Snap.AlertActive);
    Monitor.setAlertCallback(nullptr);
  });

  for (int I = 0; I < 8; ++I)
    Monitor.record(fakeVerdict(true)); // First excursion.
  for (int I = 0; I < 12; ++I)
    Monitor.record(fakeVerdict(false)); // Back below the threshold.
  for (int I = 0; I < 8; ++I)
    Monitor.record(fakeVerdict(true)); // Second excursion: no callback.

  EXPECT_EQ(Calls, 1u);
  EXPECT_EQ(Monitor.alertsRaised(), 2u);
}

TEST(ServeTest, MonitorWindowEvictionIsExact) {
  DriftWindowConfig Cfg;
  Cfg.WindowSize = 4;
  Cfg.AlertRejectRate = 2.0; // Never alerts; this test is about counting.
  Cfg.MinFill = 1;
  WindowedDriftMonitor Monitor(Cfg);

  // Pattern R A R A R: window of 4 ends with A R A R -> 2 rejected.
  bool Pattern[] = {true, false, true, false, true};
  for (bool Rej : Pattern)
    Monitor.record(fakeVerdict(Rej));
  DriftWindowSnapshot Snap = Monitor.snapshot();
  EXPECT_EQ(Snap.TotalSeen, 5u);
  EXPECT_EQ(Snap.WindowFill, 4u);
  EXPECT_EQ(Snap.WindowRejected, 2u);
  EXPECT_DOUBLE_EQ(Snap.RejectRate, 0.5);
}

TEST(ServeTest, MonitorLabeledCountsWindowAndLifetime) {
  DriftWindowConfig Cfg;
  Cfg.WindowSize = 3;
  Cfg.MinFill = 1;
  WindowedDriftMonitor Monitor(Cfg);

  Monitor.recordLabeled(fakeVerdict(true), /*Mispredicted=*/true);   // TP
  Monitor.recordLabeled(fakeVerdict(true), /*Mispredicted=*/false);  // FP
  Monitor.recordLabeled(fakeVerdict(false), /*Mispredicted=*/true);  // FN
  Monitor.recordLabeled(fakeVerdict(false), /*Mispredicted=*/false); // TN

  DriftWindowSnapshot Snap = Monitor.snapshot();
  // Lifetime saw all four; the window evicted the TP.
  EXPECT_EQ(Snap.Lifetime.TruePositive, 1u);
  EXPECT_EQ(Snap.Lifetime.FalsePositive, 1u);
  EXPECT_EQ(Snap.Lifetime.FalseNegative, 1u);
  EXPECT_EQ(Snap.Lifetime.TrueNegative, 1u);
  EXPECT_EQ(Snap.Window.TruePositive, 0u);
  EXPECT_EQ(Snap.Window.FalsePositive, 1u);
  EXPECT_EQ(Snap.Window.FalseNegative, 1u);
  EXPECT_EQ(Snap.Window.TrueNegative, 1u);

  Monitor.reset();
  Snap = Monitor.snapshot();
  EXPECT_EQ(Snap.TotalSeen, 0u);
  EXPECT_EQ(Snap.WindowFill, 0u);
  EXPECT_EQ(Snap.Lifetime.total(), 0u);
}
