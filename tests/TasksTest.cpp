//===- tests/TasksTest.cpp - case-study substrate tests -----------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "tasks/DnnCodeGeneration.h"
#include "tasks/HeterogeneousMapping.h"
#include "tasks/LoopVectorization.h"
#include "tasks/ThreadCoarsening.h"
#include "tasks/VulnerabilityDetection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

using namespace prom;
using namespace prom::tasks;

//===----------------------------------------------------------------------===//
// Generic generator properties, parameterized over the classification tasks
//===----------------------------------------------------------------------===//

namespace {

struct TaskCase {
  const char *Name;
  std::function<std::unique_ptr<CaseStudy>()> Make;
};

class TaskGeneratorTest : public ::testing::TestWithParam<TaskCase> {};

} // namespace

TEST_P(TaskGeneratorTest, GeneratesConsistentCorpus) {
  support::Rng R(11);
  auto Task = GetParam().Make();
  data::Dataset Data = Task->generate(R);
  ASSERT_FALSE(Data.empty());
  size_t Dim = Data.featureDim();
  EXPECT_GT(Dim, 0u);
  for (const data::Sample &S : Data.samples()) {
    EXPECT_EQ(S.Features.size(), Dim);
    if (Data.numClasses() > 0) {
      EXPECT_GE(S.Label, 0);
      EXPECT_LT(S.Label, Data.numClasses());
    }
    for (int Tok : S.Tokens) {
      EXPECT_GE(Tok, 0);
      EXPECT_LT(Tok, Data.vocabSize());
    }
  }
}

TEST_P(TaskGeneratorTest, DeterministicUnderSeed) {
  auto Task = GetParam().Make();
  support::Rng R1(77), R2(77);
  data::Dataset A = Task->generate(R1);
  data::Dataset B = Task->generate(R2);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); I += 13) {
    EXPECT_EQ(A[I].Label, B[I].Label);
    ASSERT_EQ(A[I].Features.size(), B[I].Features.size());
    for (size_t D = 0; D < A[I].Features.size(); ++D)
      EXPECT_DOUBLE_EQ(A[I].Features[D], B[I].Features[D]);
  }
}

TEST_P(TaskGeneratorTest, OptionCostsConsistentWithLabels) {
  support::Rng R(12);
  auto Task = GetParam().Make();
  if (!Task->hasOptionCosts())
    GTEST_SKIP() << "task has no option costs";
  data::Dataset Data = Task->generate(R);
  for (const data::Sample &S : Data.samples()) {
    ASSERT_FALSE(S.OptionCosts.empty());
    // The label is the cost-minimizing option, so its perf ratio is 1.
    EXPECT_DOUBLE_EQ(S.perfToOracle(S.Label), 1.0);
    for (double C : S.OptionCosts)
      EXPECT_GT(C, 0.0);
  }
}

TEST_P(TaskGeneratorTest, DriftSplitsAreDisjointAndNonTrivial) {
  support::Rng R(13);
  auto Task = GetParam().Make();
  data::Dataset Data = Task->generate(R);
  std::vector<TaskSplit> Splits = Task->driftSplits(Data, R);
  ASSERT_FALSE(Splits.empty());
  for (const TaskSplit &Split : Splits) {
    EXPECT_FALSE(Split.Train.empty());
    EXPECT_FALSE(Split.Test.empty());
    std::set<uint64_t> TrainIds;
    for (const data::Sample &S : Split.Train.samples())
      TrainIds.insert(S.Id);
    for (const data::Sample &S : Split.Test.samples())
      EXPECT_EQ(TrainIds.count(S.Id), 0u) << Split.Name;
  }
}

TEST_P(TaskGeneratorTest, DesignSplitKeepsDistribution) {
  support::Rng R(14);
  auto Task = GetParam().Make();
  data::Dataset Data = Task->generate(R);
  std::vector<TaskSplit> Splits = Task->designSplits(Data, R);
  ASSERT_EQ(Splits.size(), 1u);
  // 80/20 within the split's own population (C5 restricts itself to the
  // BERT-base subset, so normalize by train+test rather than the corpus).
  double Denom = static_cast<double>(Splits[0].Train.size() +
                                     Splits[0].Test.size());
  EXPECT_NEAR(static_cast<double>(Splits[0].Test.size()) / Denom, 0.2,
              0.05);
}

INSTANTIATE_TEST_SUITE_P(
    CaseStudies, TaskGeneratorTest,
    ::testing::Values(
        TaskCase{"C1",
                 [] {
                   return std::make_unique<ThreadCoarsening>(
                       /*KernelsPerSuite=*/6);
                 }},
        TaskCase{"C2",
                 [] {
                   return std::make_unique<LoopVectorization>(
                       /*LoopsPerFamily=*/20);
                 }},
        TaskCase{"C3",
                 [] {
                   return std::make_unique<HeterogeneousMapping>(
                       /*KernelsPerSuite=*/30);
                 }},
        TaskCase{"C4",
                 [] {
                   return std::make_unique<VulnerabilityDetection>(
                       /*SamplesPerClass=*/36);
                 }},
        TaskCase{"C5",
                 [] {
                   return std::make_unique<DnnCodeGeneration>(
                       /*SamplesPerNetwork=*/60);
                 }}),
    [](const ::testing::TestParamInfo<TaskCase> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// C1: thread-coarsening simulator physics
//===----------------------------------------------------------------------===//

TEST(ThreadCoarseningTest, SixFactorsFourPlatforms) {
  EXPECT_EQ(ThreadCoarsening::coarseningFactors().size(), 6u);
  EXPECT_EQ(ThreadCoarsening::platforms().size(), 4u);
}

TEST(ThreadCoarseningTest, RuntimePositive) {
  support::Rng R(1);
  for (int Suite = 0; Suite < 3; ++Suite) {
    KernelProfile K = ThreadCoarsening::sampleKernel(Suite, R);
    for (const GpuPlatform &P : ThreadCoarsening::platforms())
      for (int Cf : ThreadCoarsening::coarseningFactors())
        EXPECT_GT(ThreadCoarsening::simulateRuntime(K, P, Cf), 0.0);
  }
}

TEST(ThreadCoarseningTest, HighReuseRewardsCoarsening) {
  KernelProfile K;
  K.ComputePerElem = 200.0;
  K.MemPerElem = 4.0;
  K.Divergence = 0.0;
  K.Reuse = 0.9;
  K.RegsPerThread = 12.0;
  K.WorkSize = 1e6;
  K.Stride = 1.0;
  const GpuPlatform &P = ThreadCoarsening::platforms()[0];
  EXPECT_LT(ThreadCoarsening::simulateRuntime(K, P, 4),
            ThreadCoarsening::simulateRuntime(K, P, 1));
}

TEST(ThreadCoarseningTest, DivergencePunishesCoarsening) {
  KernelProfile K;
  K.ComputePerElem = 100.0;
  K.MemPerElem = 4.0;
  K.Divergence = 0.9;
  K.Reuse = 0.0;
  K.RegsPerThread = 40.0;
  K.WorkSize = 1e5;
  K.Stride = 4.0;
  const GpuPlatform &P = ThreadCoarsening::platforms()[3];
  EXPECT_GT(ThreadCoarsening::simulateRuntime(K, P, 32),
            ThreadCoarsening::simulateRuntime(K, P, 1));
}

TEST(ThreadCoarseningTest, LabelsUseMultipleClasses) {
  support::Rng R(2);
  ThreadCoarsening Task(12);
  data::Dataset Data = Task.generate(R);
  std::set<int> Labels;
  for (const data::Sample &S : Data.samples())
    Labels.insert(S.Label);
  EXPECT_GE(Labels.size(), 3u); // The optimum moves across kernels.
}

//===----------------------------------------------------------------------===//
// C2: loop-vectorization simulator physics
//===----------------------------------------------------------------------===//

TEST(LoopVectorizationTest, ThirtyFiveClasses) {
  EXPECT_EQ(LoopVectorization::numClasses(), 35);
  EXPECT_EQ(LoopVectorization::classOf(0, 0), 0);
  EXPECT_EQ(LoopVectorization::classOf(6, 4), 34);
}

TEST(LoopVectorizationTest, DependenceLimitsVectorization) {
  LoopProfile L;
  L.TripCount = 4096;
  L.ArithIntensity = 2.0;
  L.DependenceDistance = 4.0;
  L.Stride = 1.0;
  L.MemStreams = 1.0;
  // VF beyond the dependence distance must not be profitable.
  double AtLimit = LoopVectorization::simulateRuntime(L, 4, 1);
  double Beyond = LoopVectorization::simulateRuntime(L, 64, 1);
  EXPECT_LT(AtLimit, Beyond);
}

TEST(LoopVectorizationTest, CleanLoopLikesWideVectors) {
  LoopProfile L;
  L.TripCount = 65536;
  L.ArithIntensity = 2.0;
  L.DependenceDistance = 0.0;
  L.Stride = 1.0;
  L.MemStreams = 1.0;
  EXPECT_LT(LoopVectorization::simulateRuntime(L, 16, 2),
            LoopVectorization::simulateRuntime(L, 1, 1));
}

TEST(LoopVectorizationTest, RegisterPressureCapsCombinedFactors) {
  LoopProfile L;
  L.TripCount = 65536;
  L.ArithIntensity = 2.0;
  L.Stride = 1.0;
  L.MemStreams = 4.0;
  // VF*IF = 1024 with 4 streams must spill heavily.
  EXPECT_GT(LoopVectorization::simulateRuntime(L, 64, 16),
            LoopVectorization::simulateRuntime(L, 16, 2));
}

TEST(LoopVectorizationTest, FamiliesProvideGroupStructure) {
  support::Rng R(3);
  LoopVectorization Task(/*LoopsPerFamily=*/10, /*NumFamilies=*/18);
  data::Dataset Data = Task.generate(R);
  EXPECT_EQ(Data.groupIds().size(), 18u);
  std::vector<TaskSplit> Drift = Task.driftSplits(Data, R);
  ASSERT_EQ(Drift.size(), 1u);
  // Two whole regimes (families % 6 in {1, 3}) are held out for drift.
  EXPECT_EQ(Drift[0].Test.groupIds().size(), 6u);
  for (int G : Drift[0].Test.groupIds())
    EXPECT_TRUE(G % 6 == 1 || G % 6 == 3);
}

//===----------------------------------------------------------------------===//
// C3: heterogeneous-mapping simulator physics
//===----------------------------------------------------------------------===//

TEST(HeterogeneousMappingTest, TransferBoundKernelsPreferCpu) {
  MappingProfile K;
  K.ComputeOps = 2.0;
  K.MemOps = 2.0;
  K.TransferBytes = 500.0;
  K.Parallelism = 1e5;
  EXPECT_LT(HeterogeneousMapping::cpuRuntime(K),
            HeterogeneousMapping::gpuRuntime(K));
}

TEST(HeterogeneousMappingTest, ParallelComputePrefersGpu) {
  MappingProfile K;
  K.ComputeOps = 500.0;
  K.MemOps = 10.0;
  K.TransferBytes = 20.0;
  K.Parallelism = 1e6;
  K.Divergence = 0.05;
  EXPECT_GT(HeterogeneousMapping::cpuRuntime(K),
            HeterogeneousMapping::gpuRuntime(K));
}

TEST(HeterogeneousMappingTest, BothClassesPresent) {
  support::Rng R(4);
  HeterogeneousMapping Task(50);
  data::Dataset Data = Task.generate(R);
  std::vector<size_t> Counts = Data.classCounts();
  EXPECT_GT(Counts[0], Data.size() / 10);
  EXPECT_GT(Counts[1], Data.size() / 10);
}

TEST(HeterogeneousMappingTest, GraphsAreWellFormed) {
  support::Rng R(5);
  HeterogeneousMapping Task(20);
  data::Dataset Data = Task.generate(R);
  for (const data::Sample &S : Data.samples()) {
    const data::Graph &G = S.ProgramGraph;
    ASSERT_GT(G.NumNodes, 0);
    EXPECT_EQ(G.FeatDim, HeterogeneousMapping::graphFeatDim());
    EXPECT_EQ(G.NodeFeats.size(),
              static_cast<size_t>(G.NumNodes) * G.FeatDim);
    for (const auto &[Src, Dst] : G.Edges) {
      EXPECT_GE(Src, 0);
      EXPECT_LT(Src, G.NumNodes);
      EXPECT_GE(Dst, 0);
      EXPECT_LT(Dst, G.NumNodes);
    }
  }
}

//===----------------------------------------------------------------------===//
// C4: vulnerability corpus temporal structure
//===----------------------------------------------------------------------===//

TEST(VulnerabilityTest, EraBoundaries) {
  EXPECT_EQ(VulnerabilityDetection::eraOf(2012), 0);
  EXPECT_EQ(VulnerabilityDetection::eraOf(2016), 0);
  EXPECT_EQ(VulnerabilityDetection::eraOf(2017), 1);
  EXPECT_EQ(VulnerabilityDetection::eraOf(2020), 1);
  EXPECT_EQ(VulnerabilityDetection::eraOf(2021), 2);
  EXPECT_EQ(VulnerabilityDetection::eraOf(2023), 2);
}

TEST(VulnerabilityTest, MotifsEvolveAcrossEras) {
  support::Rng R(6);
  // The same class must produce measurably different token distributions
  // in era 0 vs era 2 (the Figure 1 motivation).
  std::vector<double> Hist0(VulnerabilityDetection::vocabSize(), 0.0);
  std::vector<double> Hist2(VulnerabilityDetection::vocabSize(), 0.0);
  for (int I = 0; I < 100; ++I) {
    data::Sample A =
        VulnerabilityDetection::makeSample(CweKind::DoubleFree, 2013, R);
    data::Sample B =
        VulnerabilityDetection::makeSample(CweKind::DoubleFree, 2023, R);
    for (int T : A.Tokens)
      Hist0[static_cast<size_t>(T)] += 1.0;
    for (int T : B.Tokens)
      Hist2[static_cast<size_t>(T)] += 1.0;
  }
  double L1 = 0.0, Total = 0.0;
  for (size_t T = 0; T < Hist0.size(); ++T) {
    L1 += std::abs(Hist0[T] - Hist2[T]);
    Total += Hist0[T] + Hist2[T];
  }
  EXPECT_GT(L1 / Total, 0.2); // At least 20% distribution mass moved.
}

TEST(VulnerabilityTest, FeaturesAreTokenHistogram) {
  support::Rng R(7);
  data::Sample S =
      VulnerabilityDetection::makeSample(CweKind::FormatString, 2015, R);
  double Sum = 0.0;
  for (double F : S.Features)
    Sum += F;
  EXPECT_DOUBLE_EQ(Sum, static_cast<double>(S.Tokens.size()));
}

TEST(VulnerabilityTest, TemporalDriftSplitRespectsYears) {
  support::Rng R(8);
  VulnerabilityDetection Task(40);
  data::Dataset Data = Task.generate(R);
  std::vector<TaskSplit> Drift = Task.driftSplits(Data, R);
  ASSERT_EQ(Drift.size(), 1u);
  for (const data::Sample &S : Drift[0].Train.samples())
    EXPECT_LE(S.Year, 2020);
  for (const data::Sample &S : Drift[0].Test.samples())
    EXPECT_GE(S.Year, 2021);
}

//===----------------------------------------------------------------------===//
// C5: DNN code-generation simulator and search
//===----------------------------------------------------------------------===//

TEST(DnnCodeGenTest, ThroughputInUnitRange) {
  support::Rng R(9);
  for (int I = 0; I < 200; ++I) {
    Schedule S = DnnCodeGeneration::sampleSchedule(R);
    for (const BertVariant &V : DnnCodeGeneration::variants()) {
      double T = DnnCodeGeneration::simulateThroughput(S, V);
      EXPECT_GE(T, 0.0);
      EXPECT_LE(T, 1.0);
    }
  }
}

TEST(DnnCodeGenTest, VectorizationHelpsAlignedTiles) {
  Schedule S;
  S.TileM = 16;
  S.TileN = 16;
  S.TileK = 16;
  S.Unroll = 2;
  S.Parallel = 8;
  const BertVariant &V = DnnCodeGeneration::variants()[0];
  S.Vectorize = 0;
  double Scalar = DnnCodeGeneration::simulateThroughput(S, V);
  S.Vectorize = 1;
  double Vector = DnnCodeGeneration::simulateThroughput(S, V);
  EXPECT_GT(Vector, Scalar);
}

TEST(DnnCodeGenTest, OptimaDifferAcrossVariants) {
  // The drift premise: variants with different reduction depths prefer
  // different tiles (the K-scaled working set). A schedule tuned for the
  // shallow BERT-tiny must be suboptimal on the deep BERT-large: its wide
  // tiles blow the cache once K grows.
  double BestLarge = DnnCodeGeneration::oracleBest(3);
  EXPECT_GT(BestLarge, 0.0);

  support::Rng R(10);
  Schedule TinyBest;
  double Best = 0.0;
  for (int I = 0; I < 4000; ++I) {
    Schedule S = DnnCodeGeneration::sampleSchedule(R);
    double T = DnnCodeGeneration::simulateThroughput(
        S, DnnCodeGeneration::variants()[1]);
    if (T > Best) {
      Best = T;
      TinyBest = S;
    }
  }
  double OnLarge = DnnCodeGeneration::simulateThroughput(
      TinyBest, DnnCodeGeneration::variants()[3]);
  EXPECT_LT(OnLarge / BestLarge, 0.98);
}

TEST(DnnCodeGenTest, MutateChangesOneDimension) {
  support::Rng R(11);
  Schedule S = DnnCodeGeneration::sampleSchedule(R);
  for (int I = 0; I < 50; ++I) {
    Schedule M = DnnCodeGeneration::mutate(S, R);
    int Diffs = (M.TileM != S.TileM) + (M.TileN != S.TileN) +
                (M.TileK != S.TileK) + (M.Unroll != S.Unroll) +
                (M.Vectorize != S.Vectorize) + (M.Parallel != S.Parallel);
    EXPECT_LE(Diffs, 1);
  }
}

TEST(DnnCodeGenTest, GuidedSearchWithOracleModelNearsOracle) {
  // A cost model that IS the simulator should reach the oracle quickly.
  class OracleModel : public ml::Regressor {
  public:
    void fit(const data::Dataset &, support::Rng &) override {}
    double predict(const data::Sample &S) const override {
      return S.Target; // makeSample stores the simulated throughput.
    }
    std::string name() const override { return "oracle"; }
  };
  OracleModel Model;
  support::Rng R(12);
  DnnCodeGeneration::SearchResult Res = DnnCodeGeneration::guidedSearch(
      Model, /*NetworkIdx=*/0, R);
  EXPECT_GT(Res.PerfToOracle, 0.9);
  EXPECT_EQ(Res.Measurements, 6u);
}

TEST(DnnCodeGenTest, GuidedSearchWithRandomModelIsWorse) {
  class RandomModel : public ml::Regressor {
  public:
    void fit(const data::Dataset &, support::Rng &) override {}
    double predict(const data::Sample &S) const override {
      // A deterministic but meaningless ranking.
      return std::fmod(static_cast<double>(S.Tokens[0]) * 0.371 +
                           S.Features[0] * 0.173,
                       1.0);
    }
    std::string name() const override { return "random"; }
  };
  class OracleModel : public ml::Regressor {
  public:
    void fit(const data::Dataset &, support::Rng &) override {}
    double predict(const data::Sample &S) const override { return S.Target; }
    std::string name() const override { return "oracle"; }
  };
  support::Rng R1(13), R2(13);
  RandomModel Bad;
  OracleModel Good;
  double BadPerf =
      DnnCodeGeneration::guidedSearch(Bad, 0, R1).PerfToOracle;
  double GoodPerf =
      DnnCodeGeneration::guidedSearch(Good, 0, R2).PerfToOracle;
  EXPECT_LE(BadPerf, GoodPerf + 1e-9);
}
