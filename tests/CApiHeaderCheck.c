/*===- tests/CApiHeaderCheck.c - strict-C99 check of CApi.h --------*- C -*-===
 *
 * Part of the PROM reproduction. Distributed under the MIT license.
 *
 *===----------------------------------------------------------------------===*/
/*
 * Compiled with -std=c99 -pedantic -Werror (see CMakeLists.txt): any C++
 * construct, implicit type, or missing include leaking into the public
 * ABI header fails the build. Included twice to prove the include guard.
 */

#include "core/CApi.h"
#include "core/CApi.h"

/* Touch one symbol from each handle family so the declarations are used
 * and the translation unit is not empty (empty TUs are a C99 constraint
 * violation under -pedantic). */
typedef prom_detector *(*prom_create_fn)(int, int, double);
typedef prom_fleet *(*prom_fleet_create_fn)(size_t);

const prom_create_fn prom_capi_header_check_create = prom_create;
const prom_fleet_create_fn prom_capi_header_check_fleet = prom_fleet_create;
