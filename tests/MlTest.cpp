//===- tests/MlTest.cpp - ML substrate tests ----------------------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/AttentionPool.h"
#include "ml/DecisionTree.h"
#include "ml/Gcn.h"
#include "ml/GradientBoosting.h"
#include "ml/Knn.h"
#include "ml/Linear.h"
#include "ml/Lstm.h"
#include "ml/Mlp.h"
#include "ml/Optim.h"
#include "ml/RandomForest.h"
#include "support/Rng.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

using namespace prom;
using namespace prom::ml;
using prom::testing::gaussianBlobs;
using prom::testing::linearRegression;
using prom::testing::tokenBlobs;

namespace {

double accuracy(const Classifier &Model, const data::Dataset &Test) {
  size_t Correct = 0;
  for (const data::Sample &S : Test.samples())
    if (Model.predict(S) == S.Label)
      ++Correct;
  return static_cast<double>(Correct) / static_cast<double>(Test.size());
}

/// Builds a small graph dataset where the label is encoded in node types.
data::Dataset graphBlobs(size_t PerClass, support::Rng &R) {
  data::Dataset Data("graphs", 2);
  for (int C = 0; C < 2; ++C)
    for (size_t I = 0; I < PerClass; ++I) {
      data::Sample S;
      data::Graph &G = S.ProgramGraph;
      G.NumNodes = 6;
      G.FeatDim = 3;
      G.NodeFeats.assign(18, 0.0);
      for (int V = 0; V < 6; ++V) {
        // Class 0: mostly type-0 nodes; class 1: mostly type-1 nodes.
        int Kind = R.bernoulli(0.8) ? C : 1 - C;
        G.NodeFeats[static_cast<size_t>(V) * 3 + Kind] = 1.0;
        G.NodeFeats[static_cast<size_t>(V) * 3 + 2] = R.uniform();
      }
      for (int V = 0; V + 1 < 6; ++V)
        G.Edges.push_back({V, V + 1});
      S.Features = {static_cast<double>(C)};
      S.Label = C;
      Data.add(std::move(S));
    }
  return Data;
}

} // namespace

//===----------------------------------------------------------------------===//
// Optimizer
//===----------------------------------------------------------------------===//

TEST(OptimTest, AdamMinimizesQuadratic) {
  // Minimize f(x) = (x - 3)^2 with Adam.
  std::vector<double> X = {0.0};
  AdamState State;
  AdamConfig Cfg;
  Cfg.LearningRate = 0.1;
  for (int Step = 0; Step < 500; ++Step) {
    std::vector<double> Grad = {2.0 * (X[0] - 3.0)};
    adamStep(X, Grad, State, Cfg);
  }
  EXPECT_NEAR(X[0], 3.0, 1e-2);
}

TEST(OptimTest, WeightDecayShrinksParameters) {
  std::vector<double> X = {5.0};
  AdamState State;
  AdamConfig Cfg;
  Cfg.LearningRate = 0.05;
  Cfg.WeightDecay = 0.5;
  for (int Step = 0; Step < 400; ++Step) {
    std::vector<double> Grad = {0.0};
    adamStep(X, Grad, State, Cfg);
  }
  EXPECT_NEAR(X[0], 0.0, 0.05);
}

//===----------------------------------------------------------------------===//
// Feature-vector classifiers (parameterized over model factories)
//===----------------------------------------------------------------------===//

using FactoryFn = std::function<std::unique_ptr<Classifier>()>;

struct NamedFactory {
  const char *Name;
  FactoryFn Make;
};

class FeatureClassifierTest
    : public ::testing::TestWithParam<NamedFactory> {};

TEST_P(FeatureClassifierTest, LearnsSeparableBlobs) {
  support::Rng R(101);
  data::Dataset Train = gaussianBlobs(3, 120, 4.0, 0.6, R);
  data::Dataset Test = gaussianBlobs(3, 40, 4.0, 0.6, R);
  auto Model = GetParam().Make();
  Model->fit(Train, R);
  EXPECT_GT(accuracy(*Model, Test), 0.9) << GetParam().Name;
}

TEST_P(FeatureClassifierTest, ProbabilitiesAreDistribution) {
  support::Rng R(102);
  data::Dataset Train = gaussianBlobs(3, 60, 4.0, 0.6, R);
  auto Model = GetParam().Make();
  Model->fit(Train, R);
  for (int I = 0; I < 10; ++I) {
    std::vector<double> P = Model->predictProba(Train[static_cast<size_t>(I)]);
    ASSERT_EQ(P.size(), 3u);
    double Sum = 0.0;
    for (double V : P) {
      EXPECT_GE(V, 0.0);
      EXPECT_LE(V, 1.0 + 1e-9);
      Sum += V;
    }
    EXPECT_NEAR(Sum, 1.0, 1e-6) << GetParam().Name;
  }
}

TEST_P(FeatureClassifierTest, DeterministicGivenSeed) {
  support::Rng R1(103), R2(103);
  data::Dataset Train = gaussianBlobs(3, 60, 4.0, 0.6, R1);
  support::Rng RCopy(104), RCopy2(104);
  auto A = GetParam().Make();
  auto B = GetParam().Make();
  A->fit(Train, RCopy);
  B->fit(Train, RCopy2);
  for (int I = 0; I < 20; ++I) {
    std::vector<double> PA = A->predictProba(Train[static_cast<size_t>(I)]);
    std::vector<double> PB = B->predictProba(Train[static_cast<size_t>(I)]);
    for (size_t C = 0; C < PA.size(); ++C)
      EXPECT_DOUBLE_EQ(PA[C], PB[C]) << GetParam().Name;
  }
}

TEST_P(FeatureClassifierTest, UpdateAdaptsToNewRegion) {
  support::Rng R(105);
  data::Dataset Train = gaussianBlobs(3, 100, 4.0, 0.5, R);
  auto Model = GetParam().Make();
  Model->fit(Train, R);

  // New samples from a shifted region, labeled class 0.
  data::Dataset Shifted("shifted", 3);
  for (int I = 0; I < 60; ++I) {
    data::Sample S;
    S.Features = {12.0 + R.gaussian(0.0, 0.5), R.gaussian(0.0, 0.5)};
    S.Label = 0;
    Shifted.add(std::move(S));
  }
  data::Dataset Merged = Train;
  Merged.append(Shifted);
  Model->update(Merged, R);

  size_t Correct = 0;
  for (int I = 0; I < 30; ++I) {
    data::Sample S;
    S.Features = {12.0 + R.gaussian(0.0, 0.5), R.gaussian(0.0, 0.5)};
    S.Label = 0;
    if (Model->predict(S) == 0)
      ++Correct;
  }
  EXPECT_GE(Correct, 24u) << GetParam().Name;
}

INSTANTIATE_TEST_SUITE_P(
    Models, FeatureClassifierTest,
    ::testing::Values(
        NamedFactory{"LogReg",
                     [] { return std::make_unique<LogisticRegression>(); }},
        NamedFactory{"SVM", [] { return std::make_unique<LinearSvm>(); }},
        NamedFactory{"MLP",
                     [] { return std::make_unique<MlpClassifier>(); }},
        NamedFactory{"GBC",
                     [] {
                       return std::make_unique<GradientBoostingClassifier>();
                     }},
        NamedFactory{"RF",
                     [] {
                       return std::make_unique<RandomForestClassifier>();
                     }},
        NamedFactory{"kNN", [] { return std::make_unique<KnnClassifier>(); }}),
    [](const ::testing::TestParamInfo<NamedFactory> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Individual model behaviours
//===----------------------------------------------------------------------===//

TEST(MlpTest, EmbedReturnsPenultimateLayer) {
  support::Rng R(1);
  data::Dataset Train = gaussianBlobs(2, 50, 4.0, 0.5, R);
  MlpConfig Cfg;
  Cfg.HiddenSizes = {8, 5};
  MlpClassifier Model(Cfg);
  Model.fit(Train, R);
  EXPECT_EQ(Model.embed(Train[0]).size(), 5u);
}

TEST(MlpTest, RegressorFitsLinearFunction) {
  support::Rng R(2);
  data::Dataset Train = linearRegression(400, 0.05, R);
  MlpRegressor Model;
  Model.fit(Train, R);
  double ErrSum = 0.0;
  data::Dataset Test = linearRegression(100, 0.0, R);
  for (const data::Sample &S : Test.samples())
    ErrSum += std::fabs(Model.predict(S) - S.Target);
  EXPECT_LT(ErrSum / 100.0, 0.35);
}

TEST(SvmTest, MarginsFavourTrueClass) {
  support::Rng R(3);
  data::Dataset Train = gaussianBlobs(2, 100, 4.0, 0.4, R);
  LinearSvm Model;
  Model.fit(Train, R);
  std::vector<double> M = Model.margins(Train[0].Features);
  EXPECT_GT(M[static_cast<size_t>(Train[0].Label)],
            M[static_cast<size_t>(1 - Train[0].Label)]);
}

TEST(KnnTest, RegressorAveragesNeighbours) {
  support::Rng R(4);
  data::Dataset Train("knn", 0);
  for (int I = 0; I < 10; ++I) {
    data::Sample S;
    S.Features = {static_cast<double>(I)};
    S.Target = static_cast<double>(I);
    Train.add(std::move(S));
  }
  KnnRegressor Model(3);
  Model.fit(Train, R);
  data::Sample Probe;
  Probe.Features = {5.0};
  EXPECT_NEAR(Model.predict(Probe), 5.0, 1.01);
}

TEST(KnnTest, DuplicateDistanceTieBreakSharedBySerialAndBatch) {
  // Regression test for the one-tie-break-rule contract: with many
  // training points at exactly the same distance from a query, the serial
  // kNearest-backed forward and the batched l2SqMxN forward must pick the
  // same neighbours (ascending index among ties) and hence emit
  // bit-identical probabilities.
  support::Rng R(71);
  data::Dataset Train("ties", 2);
  for (int I = 0; I < 12; ++I) {
    data::Sample S;
    // Six points at (1, 0), six at (-1, 0): every query on the y-axis is
    // equidistant from all twelve.
    S.Features = {I < 6 ? 1.0 : -1.0, 0.0};
    S.Label = I % 2;
    Train.add(std::move(S));
  }
  KnnClassifier Model(5);
  Model.fit(Train, R);

  data::Dataset Test("tie-queries", 2);
  for (int I = 0; I < 4; ++I) {
    data::Sample S;
    S.Features = {0.0, static_cast<double>(I)};
    S.Label = 0;
    Test.add(std::move(S));
  }
  support::Matrix Batched = Model.predictProbaBatch(Test);
  for (size_t I = 0; I < Test.size(); ++I) {
    std::vector<double> Serial = Model.predictProba(Test[I]);
    for (size_t C = 0; C < Serial.size(); ++C)
      EXPECT_EQ(prom::testing::bits(Serial[C]),
                prom::testing::bits(Batched.at(I, C)))
          << "query " << I << " class " << C;
  }
  // The ascending-index rule makes the outcome fully deterministic: the 5
  // nearest of 12 equidistant points are indices 0-4 (labels 0,1,0,1,0 at
  // equal weights), so class 0 gets 3/5 of the vote.
  EXPECT_DOUBLE_EQ(Batched.at(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(Batched.at(0, 1), 0.4);
}

TEST(KnnTest, ClusterIndexedPredictionsAreBitIdentical) {
  // buildClusterIndex() reroutes the serial predicts through the lossless
  // cluster-pruned scan; classifier probabilities and regressor outputs
  // must not move by a single bit, including on tie-heavy data, and the
  // indexed serial path must keep matching the (exact-scan) batch path.
  support::Rng R(99);
  data::Dataset Train = gaussianBlobs(3, 400, 6.0, 1.0, R);
  data::Dataset Test = gaussianBlobs(3, 40, 6.0, 1.5, R);

  KnnClassifier Plain(7), Indexed(7);
  Plain.fit(Train, R);
  support::Rng R2(99); // Same fit inputs; fit() ignores the Rng anyway.
  Indexed.fit(Train, R2);
  Indexed.buildClusterIndex();

  support::Matrix Batched = Indexed.predictProbaBatch(Test);
  for (size_t I = 0; I < Test.size(); ++I) {
    std::vector<double> Exact = Plain.predictProba(Test[I]);
    std::vector<double> Pruned = Indexed.predictProba(Test[I]);
    ASSERT_EQ(Exact.size(), Pruned.size());
    for (size_t C = 0; C < Exact.size(); ++C) {
      EXPECT_EQ(prom::testing::bits(Pruned[C]),
                prom::testing::bits(Exact[C]))
          << "query " << I << " class " << C;
      EXPECT_EQ(prom::testing::bits(Pruned[C]),
                prom::testing::bits(Batched.at(I, C)))
          << "query " << I << " class " << C;
    }
  }

  // Regressor, including exact-duplicate targets and tied distances.
  data::Dataset RegTrain("reg", 0);
  for (int I = 0; I < 300; ++I) {
    data::Sample S;
    S.Features = {static_cast<double>(I % 10), static_cast<double>(I % 3)};
    S.Target = static_cast<double>(I % 7);
    RegTrain.add(std::move(S));
  }
  KnnRegressor RegPlain(5), RegIndexed(5);
  RegPlain.fit(RegTrain, R);
  RegIndexed.fit(RegTrain, R);
  RegIndexed.buildClusterIndex(16);
  for (int I = 0; I < 20; ++I) {
    data::Sample Probe;
    Probe.Features = {static_cast<double>(I % 11) * 0.9,
                      static_cast<double>(I % 4) * 1.1};
    EXPECT_EQ(prom::testing::bits(RegIndexed.predict(Probe)),
              prom::testing::bits(RegPlain.predict(Probe)))
        << "probe " << I;
  }

  // Refitting drops the index (stale training block must never leak).
  Indexed.fit(Train, R);
  std::vector<double> AfterRefit = Indexed.predictProba(Test[0]);
  std::vector<double> ExactRefit = Plain.predictProba(Test[0]);
  for (size_t C = 0; C < AfterRefit.size(); ++C)
    EXPECT_EQ(prom::testing::bits(AfterRefit[C]),
              prom::testing::bits(ExactRefit[C]));
}

TEST(TreeTest, BatchedTraversalMatchesPerSample) {
  // The level-by-level batched descent must visit the same leaves as the
  // per-sample descent for both tree kinds, including samples that sit
  // exactly on split thresholds.
  support::Rng R(72);
  std::vector<std::vector<double>> X;
  std::vector<double> YReg;
  std::vector<int> YCls;
  std::vector<size_t> Idx;
  for (int I = 0; I < 120; ++I) {
    X.push_back({R.uniform(0.0, 1.0), R.uniform(0.0, 1.0)});
    YReg.push_back(X.back()[0] < 0.5 ? 1.0 : 5.0);
    YCls.push_back(X.back()[1] < 0.5 ? 0 : 1);
    Idx.push_back(static_cast<size_t>(I));
  }
  RegressionTree RTree;
  RTree.fit(X, YReg, Idx, TreeConfig(), R);
  ClassificationTree CTree;
  CTree.fit(X, YCls, 2, Idx, TreeConfig(), R);

  std::vector<std::vector<double>> Queries = X;
  Queries.push_back({0.5, 0.5}); // On-threshold probes.
  Queries.push_back({0.0, 1.0});
  support::FeatureMatrix Block = support::FeatureMatrix::fromRows(Queries);

  TreeBatchScratch Scratch;
  std::vector<double> RegOut(Queries.size());
  RTree.predictBatch(Block, RegOut.data(), Scratch);
  std::vector<double> ClsAccum(Queries.size() * 2, 0.0);
  CTree.addProbaBatch(Block, ClsAccum.data(), 2, Scratch);

  for (size_t I = 0; I < Queries.size(); ++I) {
    EXPECT_EQ(prom::testing::bits(RTree.predict(Queries[I])),
              prom::testing::bits(RegOut[I]))
        << "query " << I;
    const std::vector<double> &P = CTree.predictProba(Queries[I]);
    EXPECT_EQ(prom::testing::bits(P[0]),
              prom::testing::bits(ClsAccum[I * 2 + 0]));
    EXPECT_EQ(prom::testing::bits(P[1]),
              prom::testing::bits(ClsAccum[I * 2 + 1]));
  }
}

TEST(TreeTest, RegressionTreeFitsStep) {
  support::Rng R(5);
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  std::vector<size_t> Idx;
  for (int I = 0; I < 100; ++I) {
    double V = R.uniform(0.0, 1.0);
    X.push_back({V});
    Y.push_back(V < 0.5 ? 1.0 : 5.0);
    Idx.push_back(static_cast<size_t>(I));
  }
  RegressionTree Tree;
  Tree.fit(X, Y, Idx, TreeConfig(), R);
  EXPECT_NEAR(Tree.predict({0.2}), 1.0, 0.2);
  EXPECT_NEAR(Tree.predict({0.8}), 5.0, 0.2);
}

TEST(TreeTest, ClassificationTreePureLeaves) {
  support::Rng R(6);
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  std::vector<size_t> Idx;
  for (int I = 0; I < 60; ++I) {
    X.push_back({static_cast<double>(I)});
    Y.push_back(I < 30 ? 0 : 1);
    Idx.push_back(static_cast<size_t>(I));
  }
  ClassificationTree Tree;
  Tree.fit(X, Y, 2, Idx, TreeConfig(), R);
  EXPECT_GT(Tree.predictProba({10.0})[0], 0.95);
  EXPECT_GT(Tree.predictProba({50.0})[1], 0.95);
}

TEST(TreeTest, MinSamplesLeafRespected) {
  support::Rng R(7);
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  std::vector<size_t> Idx;
  for (int I = 0; I < 8; ++I) {
    X.push_back({static_cast<double>(I)});
    Y.push_back(static_cast<double>(I));
    Idx.push_back(static_cast<size_t>(I));
  }
  TreeConfig Cfg;
  Cfg.MinSamplesLeaf = 4;
  Cfg.MaxDepth = 10;
  RegressionTree Tree;
  Tree.fit(X, Y, Idx, Cfg, R);
  // Only one split can satisfy 4+4; predictions take two values.
  double A = Tree.predict({0.0}), B = Tree.predict({7.0});
  EXPECT_NE(A, B);
  EXPECT_DOUBLE_EQ(Tree.predict({1.0}), A);
  EXPECT_DOUBLE_EQ(Tree.predict({6.0}), B);
}

TEST(GbrTest, FitsNonlinearTarget) {
  support::Rng R(8);
  data::Dataset Train("gbr", 0);
  for (int I = 0; I < 400; ++I) {
    data::Sample S;
    double X = R.uniform(-2.0, 2.0);
    S.Features = {X};
    S.Target = X * X;
    Train.add(std::move(S));
  }
  GradientBoostingRegressor Model;
  Model.fit(Train, R);
  data::Sample Probe;
  Probe.Features = {1.5};
  EXPECT_NEAR(Model.predict(Probe), 2.25, 0.5);
  Probe.Features = {0.0};
  EXPECT_NEAR(Model.predict(Probe), 0.0, 0.5);
}

TEST(GbrTest, UpdateAddsStagesWithoutForgetting) {
  support::Rng R(9);
  data::Dataset Train = linearRegression(300, 0.05, R);
  GradientBoostingRegressor Model;
  Model.fit(Train, R);
  data::Sample Probe;
  Probe.Features = {1.0, 1.0};
  double Before = Model.predict(Probe);
  Model.update(Train, R);
  double After = Model.predict(Probe);
  EXPECT_NEAR(Before, After, 0.5); // Refinement, not a reset.
}

//===----------------------------------------------------------------------===//
// Sequence models
//===----------------------------------------------------------------------===//

TEST(LstmTest, LearnsTokenClasses) {
  support::Rng R(10);
  data::Dataset Train = tokenBlobs(3, 80, 12, R);
  data::Dataset Test = tokenBlobs(3, 20, 12, R);
  LstmConfig Cfg;
  Cfg.Epochs = 8;
  LstmClassifier Model(Cfg);
  Model.fit(Train, R);
  EXPECT_GT(accuracy(Model, Test), 0.9);
}

TEST(LstmTest, BidirectionalDoublesEmbedding) {
  support::Rng R(11);
  data::Dataset Train = tokenBlobs(2, 30, 8, R);
  LstmConfig Cfg;
  Cfg.Epochs = 2;
  Cfg.HiddenDim = 6;
  LstmClassifier Uni(Cfg);
  Cfg.Bidirectional = true;
  LstmClassifier Bi(Cfg);
  Uni.fit(Train, R);
  Bi.fit(Train, R);
  EXPECT_EQ(Uni.embed(Train[0]).size(), 6u);
  EXPECT_EQ(Bi.embed(Train[0]).size(), 12u);
}

TEST(LstmTest, BidirectionalLearns) {
  support::Rng R(12);
  data::Dataset Train = tokenBlobs(3, 80, 12, R);
  data::Dataset Test = tokenBlobs(3, 20, 12, R);
  LstmConfig Cfg;
  Cfg.Epochs = 8;
  Cfg.Bidirectional = true;
  LstmClassifier Model(Cfg);
  Model.fit(Train, R);
  EXPECT_GT(accuracy(Model, Test), 0.9);
}

TEST(LstmTest, LongSequencesAreClamped) {
  support::Rng R(13);
  data::Dataset Train = tokenBlobs(2, 30, 8, R);
  LstmConfig Cfg;
  Cfg.Epochs = 2;
  Cfg.MaxSeqLen = 4;
  LstmClassifier Model(Cfg);
  Model.fit(Train, R);
  data::Sample S = Train[0];
  S.Tokens.assign(500, 1); // Far beyond MaxSeqLen.
  std::vector<double> P = Model.predictProba(S);
  EXPECT_EQ(P.size(), 2u);
}

TEST(AttentionTest, LearnsTokenClasses) {
  support::Rng R(14);
  data::Dataset Train = tokenBlobs(3, 80, 12, R);
  data::Dataset Test = tokenBlobs(3, 20, 12, R);
  AttentionClassifier Model;
  Model.fit(Train, R);
  EXPECT_GT(accuracy(Model, Test), 0.9);
}

TEST(AttentionTest, RegressorLearnsTokenValue) {
  support::Rng R(15);
  // Target = fraction of token "1" in the sequence.
  data::Dataset Train("attnreg", 0, 4);
  for (int I = 0; I < 400; ++I) {
    data::Sample S;
    int Ones = 0;
    for (int T = 0; T < 12; ++T) {
      int Tok = R.intIn(0, 3);
      S.Tokens.push_back(Tok);
      if (Tok == 1)
        ++Ones;
    }
    S.Target = Ones / 12.0;
    Train.add(std::move(S));
  }
  AttentionRegressor Model;
  Model.fit(Train, R);
  double Err = 0.0;
  for (int I = 0; I < 50; ++I)
    Err += std::fabs(Model.predict(Train[static_cast<size_t>(I)]) -
                     Train[static_cast<size_t>(I)].Target);
  EXPECT_LT(Err / 50.0, 0.1);
}

TEST(AttentionTest, EmbedIsHiddenLayer) {
  support::Rng R(16);
  data::Dataset Train = tokenBlobs(2, 30, 8, R);
  AttentionConfig Cfg;
  Cfg.HiddenDim = 10;
  Cfg.Epochs = 2;
  AttentionClassifier Model(Cfg);
  Model.fit(Train, R);
  EXPECT_EQ(Model.embed(Train[0]).size(), 10u);
}

//===----------------------------------------------------------------------===//
// GCN
//===----------------------------------------------------------------------===//

TEST(GcnTest, LearnsGraphClasses) {
  support::Rng R(17);
  data::Dataset Train = graphBlobs(100, R);
  data::Dataset Test = graphBlobs(30, R);
  GcnClassifier Model;
  Model.fit(Train, R);
  EXPECT_GT(accuracy(Model, Test), 0.9);
}

TEST(GcnTest, EmbedIsPooledHidden) {
  support::Rng R(18);
  data::Dataset Train = graphBlobs(30, R);
  GcnConfig Cfg;
  Cfg.HiddenDim = 7;
  Cfg.Epochs = 5;
  GcnClassifier Model(Cfg);
  Model.fit(Train, R);
  EXPECT_EQ(Model.embed(Train[0]).size(), 7u);
}

TEST(GcnTest, ProbabilitiesNormalized) {
  support::Rng R(19);
  data::Dataset Train = graphBlobs(30, R);
  GcnClassifier Model;
  Model.fit(Train, R);
  std::vector<double> P = Model.predictProba(Train[0]);
  EXPECT_NEAR(P[0] + P[1], 1.0, 1e-9);
}
