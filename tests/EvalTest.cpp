//===- tests/EvalTest.cpp - evaluation harness tests ---------------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/ModelZoo.h"
#include "eval/Runner.h"
#include "ml/Linear.h"
#include "support/Rng.h"
#include "tasks/HeterogeneousMapping.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

using namespace prom;
using namespace prom::eval;

TEST(ModelZooTest, TaskLineupsMatchTable1) {
  EXPECT_EQ(classifierNamesFor(TaskId::ThreadCoarsening).size(), 3u);
  EXPECT_EQ(classifierNamesFor(TaskId::LoopVectorization).size(), 3u);
  EXPECT_EQ(classifierNamesFor(TaskId::HeterogeneousMapping).size(), 3u);
  EXPECT_EQ(classifierNamesFor(TaskId::VulnerabilityDetection).size(), 3u);
  EXPECT_TRUE(classifierNamesFor(TaskId::DnnCodeGeneration).empty());
}

TEST(ModelZooTest, FactoriesProduceNamedModels) {
  auto M = makeClassifier(TaskId::ThreadCoarsening, "Magni");
  EXPECT_EQ(M->name(), "MLP");
  auto L = makeClassifier(TaskId::HeterogeneousMapping, "DeepTune");
  EXPECT_EQ(L->name(), "LSTM");
  auto V = makeClassifier(TaskId::VulnerabilityDetection, "Vulde");
  EXPECT_EQ(V->name(), "BiLSTM");
  auto G = makeClassifier(TaskId::HeterogeneousMapping, "ProGraML");
  EXPECT_EQ(G->name(), "GCN");
  auto T = makeTlpRegressor();
  EXPECT_EQ(T->name(), "TLP");
}

TEST(MacroF1Test, PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(macroF1({0, 1, 2}, {0, 1, 2}, 3), 1.0);
  EXPECT_DOUBLE_EQ(macroF1({0, 0, 0}, {1, 1, 1}, 2), 0.0);
}

TEST(MacroF1Test, IgnoresAbsentClasses) {
  // Class 2 absent from truth: macro-F1 averages over classes 0 and 1.
  double F1 = macroF1({0, 0, 1, 1}, {0, 0, 1, 0}, 3);
  // Class 0: P=2/3, R=1 -> 0.8; class 1: P=1, R=0.5 -> 2/3.
  EXPECT_NEAR(F1, (0.8 + 2.0 / 3.0) / 2.0, 1e-9);
}

TEST(RunnerTest, PrepareScalesAndPartitions) {
  support::Rng R(1);
  tasks::HeterogeneousMapping Task(40);
  data::Dataset Data = Task.generate(R);
  std::vector<tasks::TaskSplit> Splits = Task.designSplits(Data, R);
  PreparedSplit Prep = prepare(Splits[0], R);
  EXPECT_FALSE(Prep.Train.empty());
  EXPECT_FALSE(Prep.Calib.empty());
  EXPECT_FALSE(Prep.Test.empty());
  // 10% calibration carved from the training side.
  EXPECT_NEAR(static_cast<double>(Prep.Calib.size()) /
                  static_cast<double>(Prep.Calib.size() + Prep.Train.size()),
              0.1, 0.03);

  // Scaled training features: near-zero mean per dimension.
  for (size_t D = 0; D < Prep.Train.featureDim(); ++D) {
    double Sum = 0.0;
    for (const data::Sample &S : Prep.Train.samples())
      Sum += S.Features[D];
    EXPECT_NEAR(Sum / static_cast<double>(Prep.Train.size()), 0.0, 0.2);
  }
}

TEST(RunnerTest, EvaluateNativeComputesPerf) {
  support::Rng R(2);
  tasks::HeterogeneousMapping Task(40);
  data::Dataset Data = Task.generate(R);
  auto Splits = Task.designSplits(Data, R);
  PreparedSplit Prep = prepare(Splits[0], R);

  ml::LogisticRegression Model;
  Model.fit(Prep.Train, R);
  NativeReport Report = evaluateNative(Model, Prep.Test);
  EXPECT_GT(Report.Accuracy, 0.6);
  EXPECT_EQ(Report.PerfSamples.size(), Prep.Test.size());
  for (double P : Report.PerfSamples) {
    EXPECT_GT(P, 0.0);
    EXPECT_LE(P, 1.0);
  }
}

TEST(RunnerTest, MispredicateSelection) {
  data::Sample WithCosts;
  WithCosts.OptionCosts = {1.0, 10.0};
  WithCosts.Label = 0;
  EXPECT_TRUE(mispredicateFor(true)(WithCosts, 1));
  EXPECT_FALSE(mispredicateFor(true)(WithCosts, 0));

  data::Sample NoCosts;
  NoCosts.Label = 1;
  EXPECT_TRUE(mispredicateFor(false)(NoCosts, 0));
  EXPECT_FALSE(mispredicateFor(false)(NoCosts, 1));
}

TEST(RunnerTest, DeploymentRoundEndToEnd) {
  // A miniature C3 deployment round through the full runner path.
  support::Rng R(3);
  tasks::HeterogeneousMapping Task(36, /*NumSuites=*/4);
  data::Dataset Data = Task.generate(R);
  auto Design = Task.designSplits(Data, R);
  auto Drift = Task.driftSplits(Data, R);

  PromConfig Cfg;
  IncrementalConfig IlCfg;
  DeploymentRow Row =
      runDeployment(TaskId::HeterogeneousMapping, "IR2Vec", Design[0],
                    Drift[0], Cfg, IlCfg, /*Seed=*/99);
  EXPECT_EQ(Row.ModelName, "IR2Vec");
  EXPECT_GT(Row.Design.Accuracy, 0.5);
  EXPECT_EQ(Row.Prom.Detection.total(), Drift[0].Test.size());
  EXPECT_GT(Row.Prom.NativeAccuracy, 0.0);
}
