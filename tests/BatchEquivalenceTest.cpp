//===- tests/BatchEquivalenceTest.cpp - batch/serial bit-equivalence ----------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The batched engine must be a pure performance transformation, enforced at
// two levels:
//
//  * Model level — a parameterized cross-model harness instantiates EVERY
//    ml::Classifier and ml::Regressor subclass from a central registry and
//    checks predictProbaBatch / predictBatch / embedBatch /
//    predictWithEmbedBatch against the per-sample forms with exact
//    floating-point equality, at batch size 1, odd-tail sizes, and the full
//    pool. A new model cannot ship with a batch path that diverges from its
//    per-sample path without extending the registry — and CMake runs this
//    suite pinned to PROM_THREADS=1 and 4, so the contract holds at every
//    thread count.
//
//  * Committee level — assessBatch() over a whole deployment set, the
//    delegating per-sample assess(), and the retained assessSerial()
//    reference implementation have to produce bit-identical verdicts,
//    including over the tree-ensemble and k-NN experts that exercise the
//    canonical ascending-tree merge and the shared k-NN tie-break rule.
//
//===----------------------------------------------------------------------===//

#include "core/Detector.h"
#include "data/Split.h"
#include "ml/AttentionPool.h"
#include "ml/Gcn.h"
#include "ml/GradientBoosting.h"
#include "ml/Knn.h"
#include "ml/Linear.h"
#include "ml/Lstm.h"
#include "ml/Mlp.h"
#include "ml/RandomForest.h"
#include "support/Rng.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

using namespace prom;
using prom::testing::bits;
using prom::testing::expectSameRegressionVerdict;
using prom::testing::expectSameVerdict;
using prom::testing::gaussianBlobs;
using prom::testing::linearRegression;
using prom::testing::tokenBlobs;

namespace {

/// Runs the full three-way equivalence check for one calibrated classifier
/// over a test set that mixes in-distribution and novel samples.
void checkClassifierEquivalence(const PromClassifier &Prom,
                                const data::Dataset &Test) {
  std::vector<Verdict> Batched = Prom.assessBatch(Test);
  ASSERT_EQ(Batched.size(), Test.size());
  for (size_t I = 0; I < Test.size(); ++I) {
    Verdict Serial = Prom.assessSerial(Test[I]);
    Verdict Single = Prom.assess(Test[I]);
    expectSameVerdict(Serial, Batched[I], I);
    expectSameVerdict(Single, Batched[I], I);
  }
}

/// Blobs plus far-out novel points, so drift flags actually fire.
data::Dataset mixedTestSet(size_t N, support::Rng &R) {
  data::Dataset Test("mixed", 3);
  for (size_t I = 0; I < N; ++I) {
    if (I % 4 == 0) {
      data::Sample Novel;
      Novel.Features = {R.gaussian(0.0, 0.8), R.gaussian(0.0, 0.8)};
      Novel.Label = 0;
      Test.add(std::move(Novel));
    } else {
      Test.add(gaussianBlobs(3, 1, 4.0, 0.8, R)[0]);
    }
  }
  return Test;
}

data::Dataset graphBlobs(size_t PerClass, support::Rng &R) {
  data::Dataset Data("graphs", 2);
  for (int C = 0; C < 2; ++C)
    for (size_t I = 0; I < PerClass; ++I) {
      data::Sample S;
      data::Graph &G = S.ProgramGraph;
      G.NumNodes = 6;
      G.FeatDim = 3;
      G.NodeFeats.assign(18, 0.0);
      for (int V = 0; V < 6; ++V) {
        int Kind = R.bernoulli(0.8) ? C : 1 - C;
        G.NodeFeats[static_cast<size_t>(V) * 3 + Kind] = 1.0;
        G.NodeFeats[static_cast<size_t>(V) * 3 + 2] = R.uniform();
      }
      for (int V = 0; V + 1 < 6; ++V)
        G.Edges.push_back({V, V + 1});
      S.Features = {static_cast<double>(C)};
      S.Label = C;
      Data.add(std::move(S));
    }
  return Data;
}

//===----------------------------------------------------------------------===//
// The cross-model registry
//===----------------------------------------------------------------------===//

/// Input modality a model consumes; decides which fixture datasets the
/// harness builds for it.
enum class DataKind { Tabular, Graph, Token };

/// Small training configs keep the sweep fast without changing what is
/// being proven (the batch/serial contract is config-independent).
ml::LstmConfig smallLstmConfig(bool Bidirectional) {
  ml::LstmConfig Cfg;
  Cfg.EmbedDim = 6;
  Cfg.HiddenDim = 6;
  Cfg.MaxSeqLen = 10;
  Cfg.Epochs = 2;
  Cfg.Bidirectional = Bidirectional;
  return Cfg;
}

ml::AttentionConfig smallAttentionConfig() {
  ml::AttentionConfig Cfg;
  Cfg.EmbedDim = 8;
  Cfg.AttnDim = 8;
  Cfg.HiddenDim = 10;
  Cfg.MaxSeqLen = 12;
  Cfg.Epochs = 2;
  return Cfg;
}

ml::ForestConfig smallForestConfig() {
  ml::ForestConfig Cfg;
  Cfg.NumTrees = 15;
  Cfg.Tree.MaxDepth = 6;
  return Cfg;
}

ml::BoostConfig smallBoostConfig() {
  ml::BoostConfig Cfg;
  Cfg.Rounds = 12;
  return Cfg;
}

/// A model with NO batch overrides: inherits every Model.h default
/// per-sample loop (predictProbaBatch / embedBatch / the combined
/// predictWithEmbedBatch). Registered in the harness so the documented
/// fallback path of the batch contract keeps equivalence coverage even
/// though every shipped model now overrides it.
class FallbackOnlyClassifier : public ml::Classifier {
public:
  void fit(const data::Dataset &Train, support::Rng &R) override {
    Inner.fit(Train, R);
  }
  std::vector<double> predictProba(const data::Sample &S) const override {
    return Inner.predictProba(S);
  }
  int numClasses() const override { return Inner.numClasses(); }
  std::string name() const override { return "fallback-probe"; }

private:
  ml::KnnClassifier Inner{3};
};

/// Regressor analogue of FallbackOnlyClassifier.
class FallbackOnlyRegressor : public ml::Regressor {
public:
  void fit(const data::Dataset &Train, support::Rng &R) override {
    Inner.fit(Train, R);
  }
  double predict(const data::Sample &S) const override {
    return Inner.predict(S);
  }
  std::string name() const override { return "fallback-probe-reg"; }

private:
  ml::KnnRegressor Inner{3};
};

/// One classifier entry: display name, factory, input modality.
///
/// EVERY concrete ml::Classifier must appear here — this registry is what
/// makes "no model ships without a batch-equivalence check" enforceable.
struct ClassifierCase {
  const char *Name;
  std::function<std::unique_ptr<ml::Classifier>()> Make;
  DataKind Kind;
};

const std::vector<ClassifierCase> &classifierCases() {
  static const std::vector<ClassifierCase> Cases = {
      {"Mlp", [] { return std::make_unique<ml::MlpClassifier>(); },
       DataKind::Tabular},
      {"LogisticRegression",
       [] { return std::make_unique<ml::LogisticRegression>(); },
       DataKind::Tabular},
      {"LinearSvm", [] { return std::make_unique<ml::LinearSvm>(); },
       DataKind::Tabular},
      {"Knn", [] { return std::make_unique<ml::KnnClassifier>(5); },
       DataKind::Tabular},
      {"KnnIndexed",
       [] {
         // MinPoints=1 forces the cluster index even on the small
         // fixture, so the batch path under test is nearestPrunedBatch.
         auto Model = std::make_unique<ml::KnnClassifier>(5);
         Model->setAutoIndex(1);
         return Model;
       },
       DataKind::Tabular},
      {"RandomForest",
       [] {
         return std::make_unique<ml::RandomForestClassifier>(
             smallForestConfig());
       },
       DataKind::Tabular},
      {"GradientBoosting",
       [] {
         return std::make_unique<ml::GradientBoostingClassifier>(
             smallBoostConfig());
       },
       DataKind::Tabular},
      {"Gcn", [] { return std::make_unique<ml::GcnClassifier>(); },
       DataKind::Graph},
      {"Lstm",
       [] { return std::make_unique<ml::LstmClassifier>(smallLstmConfig(false)); },
       DataKind::Token},
      {"BiLstm",
       [] { return std::make_unique<ml::LstmClassifier>(smallLstmConfig(true)); },
       DataKind::Token},
      {"Attention",
       [] {
         return std::make_unique<ml::AttentionClassifier>(
             smallAttentionConfig());
       },
       DataKind::Token},
      {"DefaultFallbackLoops",
       [] { return std::make_unique<FallbackOnlyClassifier>(); },
       DataKind::Tabular},
  };
  return Cases;
}

/// One regressor entry; same registry obligation as ClassifierCase.
struct RegressorCase {
  const char *Name;
  std::function<std::unique_ptr<ml::Regressor>()> Make;
  DataKind Kind;
};

const std::vector<RegressorCase> &regressorCases() {
  static const std::vector<RegressorCase> Cases = {
      {"MlpRegressor", [] { return std::make_unique<ml::MlpRegressor>(); },
       DataKind::Tabular},
      {"KnnRegressor", [] { return std::make_unique<ml::KnnRegressor>(5); },
       DataKind::Tabular},
      {"KnnRegressorIndexed",
       [] {
         auto Model = std::make_unique<ml::KnnRegressor>(5);
         Model->setAutoIndex(1);
         return Model;
       },
       DataKind::Tabular},
      {"GradientBoostingRegressor",
       [] {
         return std::make_unique<ml::GradientBoostingRegressor>(
             smallBoostConfig());
       },
       DataKind::Tabular},
      {"AttentionRegressor",
       [] {
         return std::make_unique<ml::AttentionRegressor>(
             smallAttentionConfig());
       },
       DataKind::Token},
      {"DefaultFallbackLoops",
       [] { return std::make_unique<FallbackOnlyRegressor>(); },
       DataKind::Tabular},
  };
  return Cases;
}

/// Training set for one modality.
data::Dataset makeTrainSet(DataKind Kind, bool ForRegression,
                           support::Rng &R) {
  switch (Kind) {
  case DataKind::Tabular:
    if (ForRegression)
      return linearRegression(150, 0.1, R);
    return gaussianBlobs(3, 60, 4.0, 0.8, R);
  case DataKind::Graph:
    return graphBlobs(50, R);
  case DataKind::Token: {
    data::Dataset Data = tokenBlobs(3, 25, 10, R);
    if (ForRegression)
      for (auto &S : Data.samples())
        S.Target = static_cast<double>(S.Label) + 0.25;
    return Data;
  }
  }
  return data::Dataset();
}

/// Deployment pool for one modality. Deliberately 61 samples: prime, so
/// every ThreadPool chunking of the full pool has odd tails.
data::Dataset makeTestPool(DataKind Kind, bool ForRegression,
                           support::Rng &R) {
  const size_t PoolSize = 61;
  data::Dataset Source = makeTrainSet(Kind, ForRegression, R);
  data::Dataset Pool(Source.name(), Source.numClasses(),
                     Source.vocabSize());
  for (size_t I = 0; I < PoolSize; ++I)
    Pool.add(Source[I % Source.size()]);
  return Pool;
}

/// First \p N samples of \p Pool as a batch.
data::Dataset takePrefix(const data::Dataset &Pool, size_t N) {
  data::Dataset Out(Pool.name(), Pool.numClasses(), Pool.vocabSize());
  for (size_t I = 0; I < N; ++I)
    Out.add(Pool[I]);
  return Out;
}

/// Batch sizes swept per model: a single sample, an odd tail smaller than
/// any chunking threshold, and the full (prime-sized) pool.
const size_t BatchSizes[] = {1, 7, 61};

} // namespace

//===----------------------------------------------------------------------===//
// Parameterized cross-model harness
//===----------------------------------------------------------------------===//

class ClassifierBatchEquivalence
    : public ::testing::TestWithParam<size_t> {};

TEST_P(ClassifierBatchEquivalence, BatchMatchesPerSample) {
  const ClassifierCase &Case = classifierCases()[GetParam()];
  support::Rng R(9000 + GetParam());
  data::Dataset Train = makeTrainSet(Case.Kind, /*ForRegression=*/false, R);
  std::unique_ptr<ml::Classifier> Model = Case.Make();
  Model->fit(Train, R);

  data::Dataset Pool = makeTestPool(Case.Kind, /*ForRegression=*/false, R);
  for (size_t BatchSize : BatchSizes) {
    SCOPED_TRACE("batch size " + std::to_string(BatchSize));
    data::Dataset Batch = takePrefix(Pool, BatchSize);

    support::Matrix Probs = Model->predictProbaBatch(Batch);
    support::Matrix Embeds = Model->embedBatch(Batch);
    support::Matrix Probs2, Embeds2;
    Model->predictWithEmbedBatch(Batch, Probs2, Embeds2);

    ASSERT_EQ(Probs.rows(), Batch.size());
    ASSERT_EQ(Embeds.rows(), Batch.size());
    for (size_t I = 0; I < Batch.size(); ++I) {
      SCOPED_TRACE("sample " + std::to_string(I));
      std::vector<double> P = Model->predictProba(Batch[I]);
      std::vector<double> E = Model->embed(Batch[I]);
      ASSERT_EQ(P.size(), Probs.cols());
      ASSERT_EQ(E.size(), Embeds.cols());
      for (size_t C = 0; C < P.size(); ++C) {
        EXPECT_EQ(bits(P[C]), bits(Probs.at(I, C)));
        EXPECT_EQ(bits(P[C]), bits(Probs2.at(I, C)));
      }
      for (size_t D = 0; D < E.size(); ++D) {
        EXPECT_EQ(bits(E[D]), bits(Embeds.at(I, D)));
        EXPECT_EQ(bits(E[D]), bits(Embeds2.at(I, D)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ClassifierBatchEquivalence,
    ::testing::Range(size_t(0), classifierCases().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return classifierCases()[Info.param].Name;
    });

class RegressorBatchEquivalence : public ::testing::TestWithParam<size_t> {};

TEST_P(RegressorBatchEquivalence, BatchMatchesPerSample) {
  const RegressorCase &Case = regressorCases()[GetParam()];
  support::Rng R(9100 + GetParam());
  data::Dataset Train = makeTrainSet(Case.Kind, /*ForRegression=*/true, R);
  std::unique_ptr<ml::Regressor> Model = Case.Make();
  Model->fit(Train, R);

  data::Dataset Pool = makeTestPool(Case.Kind, /*ForRegression=*/true, R);
  for (size_t BatchSize : BatchSizes) {
    SCOPED_TRACE("batch size " + std::to_string(BatchSize));
    data::Dataset Batch = takePrefix(Pool, BatchSize);

    std::vector<double> Preds = Model->predictBatch(Batch);
    support::Matrix Embeds = Model->embedBatch(Batch);
    std::vector<double> Preds2;
    support::Matrix Embeds2;
    Model->predictWithEmbedBatch(Batch, Preds2, Embeds2);

    ASSERT_EQ(Preds.size(), Batch.size());
    ASSERT_EQ(Embeds.rows(), Batch.size());
    for (size_t I = 0; I < Batch.size(); ++I) {
      SCOPED_TRACE("sample " + std::to_string(I));
      EXPECT_EQ(bits(Model->predict(Batch[I])), bits(Preds[I]));
      EXPECT_EQ(bits(Preds[I]), bits(Preds2[I]));
      std::vector<double> E = Model->embed(Batch[I]);
      ASSERT_EQ(E.size(), Embeds.cols());
      for (size_t D = 0; D < E.size(); ++D) {
        EXPECT_EQ(bits(E[D]), bits(Embeds.at(I, D)));
        EXPECT_EQ(bits(E[D]), bits(Embeds2.at(I, D)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, RegressorBatchEquivalence,
    ::testing::Range(size_t(0), regressorCases().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return regressorCases()[Info.param].Name;
    });

//===----------------------------------------------------------------------===//
// Classifier committee equivalence
//===----------------------------------------------------------------------===//

TEST(BatchEquivalenceTest, MlpClassifierBitIdentical) {
  support::Rng R(45);
  data::Dataset Full = gaussianBlobs(3, 300, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.3);
  ml::MlpClassifier Model;
  Model.fit(Train, R);

  PromClassifier Prom(Model);
  Prom.calibrate(Calib);
  checkClassifierEquivalence(Prom, mixedTestSet(120, R));
}

TEST(BatchEquivalenceTest, KnnClassifierCommitteeBitIdentical) {
  // The batched kNN forward (one l2SqMxN scan + shared tie-break) must
  // stay bit-identical through the whole committee, drift flags included.
  support::Rng R(53);
  data::Dataset Full = gaussianBlobs(3, 260, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.4);
  ml::KnnClassifier Model(5);
  Model.fit(Train, R);

  PromClassifier Prom(Model);
  Prom.calibrate(Calib);
  checkClassifierEquivalence(Prom, mixedTestSet(100, R));
}

TEST(BatchEquivalenceTest, IndexedKnnPrunedStoreCommitteeBitIdentical) {
  // Batch-native pruned path end to end: the expert's forwards go through
  // nearestPrunedBatch (auto-index at MinPoints=1) AND the store's
  // selection routes through the batch-prepared cluster-pruned scan
  // (MinEntries lowered so the fixture-sized store builds shard indexes;
  // SelectFraction <= MaxSelectFraction so routing actually fires).
  support::Rng R(57);
  data::Dataset Full = gaussianBlobs(3, 260, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.4);
  ml::KnnClassifier Model(5);
  Model.setAutoIndex(1);
  Model.fit(Train, R);

  PromConfig Cfg;
  Cfg.ClusterIndexMinEntries = 64;
  Cfg.SelectFraction = 0.2;
  Cfg.SelectAllBelow = 16;
  PromClassifier Prom(Model, Cfg);
  Prom.calibrate(Calib);
  checkClassifierEquivalence(Prom, mixedTestSet(100, R));
}

TEST(BatchEquivalenceTest, RandomForestCommitteeBitIdentical) {
  // Exercises the canonical ascending-tree vote merge under the
  // ThreadPool fan-out across trees.
  support::Rng R(54);
  data::Dataset Full = gaussianBlobs(3, 260, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.4);
  ml::RandomForestClassifier Model(smallForestConfig());
  Model.fit(Train, R);

  PromClassifier Prom(Model);
  Prom.calibrate(Calib);
  checkClassifierEquivalence(Prom, mixedTestSet(100, R));
}

TEST(BatchEquivalenceTest, GradientBoostingCommitteeBitIdentical) {
  // Exercises the ascending-round stage merge of the boosted ensemble.
  support::Rng R(55);
  data::Dataset Full = gaussianBlobs(3, 260, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.4);
  ml::GradientBoostingClassifier Model(smallBoostConfig());
  Model.fit(Train, R);

  PromClassifier Prom(Model);
  Prom.calibrate(Calib);
  checkClassifierEquivalence(Prom, mixedTestSet(100, R));
}

TEST(BatchEquivalenceTest, SubsetSelectionRegimeBitIdentical) {
  // > SelectAllBelow calibration samples: the nearest-50% partition (and
  // the distance weights) are exercised, not the select-all shortcut.
  support::Rng R(46);
  data::Dataset Full = gaussianBlobs(3, 300, 4.0, 0.9, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.5);
  ASSERT_GE(Calib.size(), 200u);
  ml::LogisticRegression Model;
  Model.fit(Train, R);

  PromClassifier Prom(Model);
  Prom.calibrate(Calib);
  checkClassifierEquivalence(Prom, mixedTestSet(150, R));
}

TEST(BatchEquivalenceTest, EveryWeightModeBitIdentical) {
  support::Rng R(47);
  data::Dataset Full = gaussianBlobs(3, 250, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.4);
  ml::LogisticRegression Model;
  Model.fit(Train, R);

  for (CalibrationWeightMode Mode :
       {CalibrationWeightMode::WeightedCount,
        CalibrationWeightMode::ScoreScaling, CalibrationWeightMode::None}) {
    SCOPED_TRACE(static_cast<int>(Mode));
    PromConfig Cfg;
    Cfg.WeightMode = Mode;
    PromClassifier Prom(Model, Cfg);
    Prom.calibrate(Calib);
    checkClassifierEquivalence(Prom, mixedTestSet(80, R));
  }
}

TEST(BatchEquivalenceTest, UnsmoothedAndUnanimityConfigsBitIdentical) {
  support::Rng R(48);
  data::Dataset Full = gaussianBlobs(3, 220, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.3);
  ml::LogisticRegression Model;
  Model.fit(Train, R);

  PromConfig Cfg;
  Cfg.SmoothedPValues = false;
  Cfg.MinVotesToFlag = 4;
  Cfg.AutoTau = false;
  Cfg.Tau = 100.0;
  PromClassifier Prom(Model, Cfg);
  Prom.calibrate(Calib);
  checkClassifierEquivalence(Prom, mixedTestSet(80, R));
}

TEST(BatchEquivalenceTest, GcnClassifierBitIdentical) {
  support::Rng R(49);
  data::Dataset Full = graphBlobs(130, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.3);
  ml::GcnClassifier Model;
  Model.fit(Train, R);

  PromClassifier Prom(Model);
  Prom.calibrate(Calib);
  data::Dataset Test = graphBlobs(40, R);
  checkClassifierEquivalence(Prom, Test);
}

TEST(BatchEquivalenceTest, LstmPromCommitteeBitIdentical) {
  // The committee contract must hold end-to-end over a sequence model's
  // batched forwards too.
  support::Rng R(65);
  ml::LstmClassifier Model(smallLstmConfig(false));
  data::Dataset Full = tokenBlobs(3, 60, 10, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.4);
  Model.fit(Train, R);

  PromClassifier Prom(Model);
  Prom.calibrate(Calib);
  data::Dataset Test = tokenBlobs(3, 15, 10, R);
  checkClassifierEquivalence(Prom, Test);
}

//===----------------------------------------------------------------------===//
// Regressor committee equivalence
//===----------------------------------------------------------------------===//

TEST(BatchEquivalenceTest, MlpRegressorBitIdentical) {
  support::Rng R(50);
  data::Dataset Train = linearRegression(400, 0.1, R);
  data::Dataset Calib = linearRegression(150, 0.1, R);
  ml::MlpRegressor Model;
  Model.fit(Train, R);

  PromConfig Cfg;
  Cfg.FixedClusters = 4;
  PromRegressor Prom(Model, Cfg);
  Prom.calibrate(Calib, R);

  // Mix of in-distribution and shifted inputs.
  data::Dataset Test("reg-mixed", 0);
  for (int I = 0; I < 120; ++I) {
    data::Sample S;
    double Lo = I % 3 == 0 ? 5.0 : -2.0, Hi = I % 3 == 0 ? 9.0 : 2.0;
    S.Features = {R.uniform(Lo, Hi), R.uniform(Lo, Hi)};
    S.Target = 2.0 * S.Features[0] - S.Features[1];
    Test.add(std::move(S));
  }

  std::vector<RegressionVerdict> Batched = Prom.assessBatch(Test);
  ASSERT_EQ(Batched.size(), Test.size());
  for (size_t I = 0; I < Test.size(); ++I) {
    RegressionVerdict Serial = Prom.assessSerial(Test[I]);
    RegressionVerdict Single = Prom.assess(Test[I]);
    expectSameRegressionVerdict(Serial, Batched[I], I);
    expectSameRegressionVerdict(Single, Batched[I], I);
  }
}

TEST(BatchEquivalenceTest, KnnRegressorBatchPathBitIdentical) {
  support::Rng R(51);
  data::Dataset Train = linearRegression(300, 0.1, R);
  data::Dataset Calib = linearRegression(120, 0.1, R);
  ml::KnnRegressor Model(5);
  Model.fit(Train, R);

  PromRegressor Prom(Model);
  Prom.calibrate(Calib, R);
  data::Dataset Test = linearRegression(80, 0.1, R);

  std::vector<RegressionVerdict> Batched = Prom.assessBatch(Test);
  for (size_t I = 0; I < Test.size(); ++I)
    expectSameRegressionVerdict(Prom.assessSerial(Test[I]), Batched[I], I);
}

TEST(BatchEquivalenceTest, IndexedRegressorLosslessAgainstUnindexed) {
  // Three-way regressor check with the calibration-side k-NN index live:
  // (a) batch vs serial bit-identity with the index on (both the knnStats
  // reuse of the index and the batch-prepared pruned store selection), and
  // (b) the indexed detector's verdicts are bit-identical to a detector
  // with the index disabled — losslessness at the committee level.
  support::Rng R(58);
  data::Dataset Train = linearRegression(300, 0.1, R);
  data::Dataset Calib = linearRegression(160, 0.1, R);
  ml::MlpRegressor Model;
  Model.fit(Train, R);

  PromConfig Indexed;
  Indexed.ClusterIndexMinEntries = 64;
  Indexed.SelectFraction = 0.2;
  Indexed.SelectAllBelow = 16;
  PromConfig Unindexed = Indexed;
  Unindexed.ClusterIndex = false;
  Unindexed.KnnClusterIndex = false;

  support::Rng RIdx(77), RRef(77);
  PromRegressor PromIdx(Model, Indexed);
  PromIdx.calibrate(Calib, RIdx);
  PromRegressor PromRef(Model, Unindexed);
  PromRef.calibrate(Calib, RRef);

  data::Dataset Test = linearRegression(90, 0.1, R);
  std::vector<RegressionVerdict> Batched = PromIdx.assessBatch(Test);
  std::vector<RegressionVerdict> Reference = PromRef.assessBatch(Test);
  ASSERT_EQ(Batched.size(), Test.size());
  for (size_t I = 0; I < Test.size(); ++I) {
    expectSameRegressionVerdict(PromIdx.assessSerial(Test[I]), Batched[I], I);
    expectSameRegressionVerdict(Reference[I], Batched[I], I);
  }
}

TEST(BatchEquivalenceTest, GbrRegressorCommitteeBitIdentical) {
  support::Rng R(56);
  data::Dataset Train = linearRegression(300, 0.1, R);
  data::Dataset Calib = linearRegression(120, 0.1, R);
  ml::GradientBoostingRegressor Model(smallBoostConfig());
  Model.fit(Train, R);

  PromRegressor Prom(Model);
  Prom.calibrate(Calib, R);
  data::Dataset Test = linearRegression(80, 0.1, R);

  std::vector<RegressionVerdict> Batched = Prom.assessBatch(Test);
  for (size_t I = 0; I < Test.size(); ++I)
    expectSameRegressionVerdict(Prom.assessSerial(Test[I]), Batched[I], I);
}

//===----------------------------------------------------------------------===//
// Detector adapters
//===----------------------------------------------------------------------===//

TEST(BatchEquivalenceTest, DriftDetectorBatchMatchesPerSample) {
  support::Rng R(52);
  data::Dataset Full = gaussianBlobs(3, 250, 4.0, 0.9, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.25);
  ml::LogisticRegression Model;
  Model.fit(Train, R);

  PromDriftDetector Det(PromConfig(), /*AutoTune=*/false);
  Det.fit(Model, Calib, R);
  data::Dataset Test = mixedTestSet(100, R);

  std::vector<char> Batched = Det.isDriftingBatch(Test);
  ASSERT_EQ(Batched.size(), Test.size());
  for (size_t I = 0; I < Test.size(); ++I)
    EXPECT_EQ(Det.isDrifting(Test[I]), Batched[I] != 0) << "sample " << I;
}
