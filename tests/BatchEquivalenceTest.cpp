//===- tests/BatchEquivalenceTest.cpp - batch/serial bit-equivalence ----------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The batched assessment engine must be a pure performance transformation:
// assessBatch() over a whole deployment set, the delegating per-sample
// assess(), and the retained assessSerial() reference implementation have
// to produce bit-identical verdicts — predicted label, drift flag, vote
// count, and every expert's credibility/confidence compared with exact
// floating-point equality. The same contract covers the batched model
// forwards (predictProbaBatch / embedBatch vs their per-sample forms).
//
//===----------------------------------------------------------------------===//

#include "core/Detector.h"
#include "data/Split.h"
#include "ml/AttentionPool.h"
#include "ml/Gcn.h"
#include "ml/Knn.h"
#include "ml/Linear.h"
#include "ml/Lstm.h"
#include "ml/Mlp.h"
#include "support/Rng.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

using namespace prom;
using prom::testing::gaussianBlobs;
using prom::testing::linearRegression;
using prom::testing::tokenBlobs;

namespace {

/// Exact (bitwise) equality of two classification verdicts.
void expectSameVerdict(const Verdict &A, const Verdict &B, size_t Index) {
  SCOPED_TRACE("sample " + std::to_string(Index));
  EXPECT_EQ(A.Predicted, B.Predicted);
  EXPECT_EQ(A.Drifted, B.Drifted);
  EXPECT_EQ(A.VotesToFlag, B.VotesToFlag);
  ASSERT_EQ(A.Probabilities.size(), B.Probabilities.size());
  for (size_t C = 0; C < A.Probabilities.size(); ++C)
    EXPECT_EQ(A.Probabilities[C], B.Probabilities[C]);
  ASSERT_EQ(A.Experts.size(), B.Experts.size());
  for (size_t E = 0; E < A.Experts.size(); ++E) {
    EXPECT_EQ(A.Experts[E].Credibility, B.Experts[E].Credibility);
    EXPECT_EQ(A.Experts[E].Confidence, B.Experts[E].Confidence);
    EXPECT_EQ(A.Experts[E].PredictionSetSize,
              B.Experts[E].PredictionSetSize);
    EXPECT_EQ(A.Experts[E].FlagDrift, B.Experts[E].FlagDrift);
  }
}

void expectSameRegressionVerdict(const RegressionVerdict &A,
                                 const RegressionVerdict &B, size_t Index) {
  SCOPED_TRACE("sample " + std::to_string(Index));
  EXPECT_EQ(A.Predicted, B.Predicted);
  EXPECT_EQ(A.Cluster, B.Cluster);
  EXPECT_EQ(A.Drifted, B.Drifted);
  EXPECT_EQ(A.VotesToFlag, B.VotesToFlag);
  ASSERT_EQ(A.Experts.size(), B.Experts.size());
  for (size_t E = 0; E < A.Experts.size(); ++E) {
    EXPECT_EQ(A.Experts[E].Credibility, B.Experts[E].Credibility);
    EXPECT_EQ(A.Experts[E].Confidence, B.Experts[E].Confidence);
    EXPECT_EQ(A.Experts[E].PredictionSetSize,
              B.Experts[E].PredictionSetSize);
    EXPECT_EQ(A.Experts[E].FlagDrift, B.Experts[E].FlagDrift);
  }
}

/// Runs the full three-way equivalence check for one calibrated classifier
/// over a test set that mixes in-distribution and novel samples.
void checkClassifierEquivalence(const PromClassifier &Prom,
                                const data::Dataset &Test) {
  std::vector<Verdict> Batched = Prom.assessBatch(Test);
  ASSERT_EQ(Batched.size(), Test.size());
  for (size_t I = 0; I < Test.size(); ++I) {
    Verdict Serial = Prom.assessSerial(Test[I]);
    Verdict Single = Prom.assess(Test[I]);
    expectSameVerdict(Serial, Batched[I], I);
    expectSameVerdict(Single, Batched[I], I);
  }
}

/// Blobs plus far-out novel points, so drift flags actually fire.
data::Dataset mixedTestSet(size_t N, support::Rng &R) {
  data::Dataset Test("mixed", 3);
  for (size_t I = 0; I < N; ++I) {
    if (I % 4 == 0) {
      data::Sample Novel;
      Novel.Features = {R.gaussian(0.0, 0.8), R.gaussian(0.0, 0.8)};
      Novel.Label = 0;
      Test.add(std::move(Novel));
    } else {
      Test.add(gaussianBlobs(3, 1, 4.0, 0.8, R)[0]);
    }
  }
  return Test;
}

data::Dataset graphBlobs(size_t PerClass, support::Rng &R) {
  data::Dataset Data("graphs", 2);
  for (int C = 0; C < 2; ++C)
    for (size_t I = 0; I < PerClass; ++I) {
      data::Sample S;
      data::Graph &G = S.ProgramGraph;
      G.NumNodes = 6;
      G.FeatDim = 3;
      G.NodeFeats.assign(18, 0.0);
      for (int V = 0; V < 6; ++V) {
        int Kind = R.bernoulli(0.8) ? C : 1 - C;
        G.NodeFeats[static_cast<size_t>(V) * 3 + Kind] = 1.0;
        G.NodeFeats[static_cast<size_t>(V) * 3 + 2] = R.uniform();
      }
      for (int V = 0; V + 1 < 6; ++V)
        G.Edges.push_back({V, V + 1});
      S.Features = {static_cast<double>(C)};
      S.Label = C;
      Data.add(std::move(S));
    }
  return Data;
}

} // namespace

//===----------------------------------------------------------------------===//
// Batched model forwards vs per-sample forwards
//===----------------------------------------------------------------------===//

TEST(BatchForwardTest, MlpMatchesPerSample) {
  support::Rng R(41);
  data::Dataset Train = gaussianBlobs(3, 150, 4.0, 0.8, R);
  ml::MlpClassifier Model;
  Model.fit(Train, R);

  data::Dataset Test = gaussianBlobs(3, 40, 4.0, 0.8, R);
  support::Matrix Probs = Model.predictProbaBatch(Test);
  support::Matrix Embeds = Model.embedBatch(Test);
  support::Matrix Probs2, Embeds2;
  Model.predictWithEmbedBatch(Test, Probs2, Embeds2);

  for (size_t I = 0; I < Test.size(); ++I) {
    std::vector<double> P = Model.predictProba(Test[I]);
    std::vector<double> E = Model.embed(Test[I]);
    ASSERT_EQ(P.size(), Probs.cols());
    ASSERT_EQ(E.size(), Embeds.cols());
    for (size_t C = 0; C < P.size(); ++C) {
      EXPECT_EQ(P[C], Probs.at(I, C));
      EXPECT_EQ(P[C], Probs2.at(I, C));
    }
    for (size_t D = 0; D < E.size(); ++D) {
      EXPECT_EQ(E[D], Embeds.at(I, D));
      EXPECT_EQ(E[D], Embeds2.at(I, D));
    }
  }
}

TEST(BatchForwardTest, LinearModelsMatchPerSample) {
  support::Rng R(42);
  data::Dataset Train = gaussianBlobs(3, 120, 4.0, 0.9, R);
  ml::LogisticRegression LogReg;
  LogReg.fit(Train, R);
  ml::LinearSvm Svm;
  Svm.fit(Train, R);

  data::Dataset Test = gaussianBlobs(3, 30, 4.0, 0.9, R);
  support::Matrix LogProbs = LogReg.predictProbaBatch(Test);
  support::Matrix SvmProbs = Svm.predictProbaBatch(Test);
  for (size_t I = 0; I < Test.size(); ++I) {
    std::vector<double> PL = LogReg.predictProba(Test[I]);
    std::vector<double> PS = Svm.predictProba(Test[I]);
    for (size_t C = 0; C < PL.size(); ++C) {
      EXPECT_EQ(PL[C], LogProbs.at(I, C));
      EXPECT_EQ(PS[C], SvmProbs.at(I, C));
    }
  }
}

TEST(BatchForwardTest, GcnStackedForwardMatchesPerSample) {
  support::Rng R(43);
  data::Dataset Train = graphBlobs(60, R);
  ml::GcnClassifier Model;
  Model.fit(Train, R);

  data::Dataset Test = graphBlobs(25, R);
  support::Matrix Probs, Embeds;
  Model.predictWithEmbedBatch(Test, Probs, Embeds);
  for (size_t I = 0; I < Test.size(); ++I) {
    std::vector<double> P = Model.predictProba(Test[I]);
    std::vector<double> E = Model.embed(Test[I]);
    for (size_t C = 0; C < P.size(); ++C)
      EXPECT_EQ(P[C], Probs.at(I, C));
    for (size_t D = 0; D < E.size(); ++D)
      EXPECT_EQ(E[D], Embeds.at(I, D));
  }
}

TEST(BatchForwardTest, LstmBatchMatchesPerSample) {
  // The sequence models carry real batch overrides (shared scratch, one
  // traversal for probabilities + embedding) instead of the inherited
  // per-sample fallback; the bit-exact contract is the same.
  support::Rng R(61);
  ml::LstmConfig Cfg;
  Cfg.EmbedDim = 8;
  Cfg.HiddenDim = 8;
  Cfg.MaxSeqLen = 12;
  Cfg.Epochs = 2;
  ml::LstmClassifier Model(Cfg);
  data::Dataset Train = tokenBlobs(3, 30, 10, R);
  Model.fit(Train, R);

  data::Dataset Test = tokenBlobs(3, 12, 10, R);
  support::Matrix Probs = Model.predictProbaBatch(Test);
  support::Matrix Embeds = Model.embedBatch(Test);
  support::Matrix Probs2, Embeds2;
  Model.predictWithEmbedBatch(Test, Probs2, Embeds2);

  for (size_t I = 0; I < Test.size(); ++I) {
    std::vector<double> P = Model.predictProba(Test[I]);
    std::vector<double> E = Model.embed(Test[I]);
    ASSERT_EQ(P.size(), Probs.cols());
    ASSERT_EQ(E.size(), Embeds.cols());
    for (size_t C = 0; C < P.size(); ++C) {
      EXPECT_EQ(P[C], Probs.at(I, C));
      EXPECT_EQ(P[C], Probs2.at(I, C));
    }
    for (size_t D = 0; D < E.size(); ++D) {
      EXPECT_EQ(E[D], Embeds.at(I, D));
      EXPECT_EQ(E[D], Embeds2.at(I, D));
    }
  }
}

TEST(BatchForwardTest, BiLstmBatchMatchesPerSample) {
  support::Rng R(62);
  ml::LstmConfig Cfg;
  Cfg.EmbedDim = 6;
  Cfg.HiddenDim = 6;
  Cfg.MaxSeqLen = 10;
  Cfg.Epochs = 2;
  Cfg.Bidirectional = true;
  ml::LstmClassifier Model(Cfg);
  data::Dataset Train = tokenBlobs(2, 30, 9, R);
  Model.fit(Train, R);

  data::Dataset Test = tokenBlobs(2, 10, 9, R);
  support::Matrix Probs, Embeds;
  Model.predictWithEmbedBatch(Test, Probs, Embeds);
  for (size_t I = 0; I < Test.size(); ++I) {
    std::vector<double> P = Model.predictProba(Test[I]);
    std::vector<double> E = Model.embed(Test[I]);
    for (size_t C = 0; C < P.size(); ++C)
      EXPECT_EQ(P[C], Probs.at(I, C));
    for (size_t D = 0; D < E.size(); ++D)
      EXPECT_EQ(E[D], Embeds.at(I, D));
  }
}

TEST(BatchForwardTest, AttentionClassifierBatchMatchesPerSample) {
  support::Rng R(63);
  ml::AttentionConfig Cfg;
  Cfg.EmbedDim = 8;
  Cfg.AttnDim = 8;
  Cfg.HiddenDim = 10;
  Cfg.MaxSeqLen = 12;
  Cfg.Epochs = 3;
  ml::AttentionClassifier Model(Cfg);
  data::Dataset Train = tokenBlobs(3, 30, 10, R);
  Model.fit(Train, R);

  data::Dataset Test = tokenBlobs(3, 12, 10, R);
  support::Matrix Probs = Model.predictProbaBatch(Test);
  support::Matrix Embeds = Model.embedBatch(Test);
  support::Matrix Probs2, Embeds2;
  Model.predictWithEmbedBatch(Test, Probs2, Embeds2);
  for (size_t I = 0; I < Test.size(); ++I) {
    std::vector<double> P = Model.predictProba(Test[I]);
    std::vector<double> E = Model.embed(Test[I]);
    for (size_t C = 0; C < P.size(); ++C) {
      EXPECT_EQ(P[C], Probs.at(I, C));
      EXPECT_EQ(P[C], Probs2.at(I, C));
    }
    for (size_t D = 0; D < E.size(); ++D) {
      EXPECT_EQ(E[D], Embeds.at(I, D));
      EXPECT_EQ(E[D], Embeds2.at(I, D));
    }
  }
}

TEST(BatchForwardTest, AttentionRegressorBatchMatchesPerSample) {
  support::Rng R(64);
  ml::AttentionConfig Cfg;
  Cfg.EmbedDim = 8;
  Cfg.AttnDim = 8;
  Cfg.HiddenDim = 10;
  Cfg.MaxSeqLen = 12;
  Cfg.Epochs = 3;
  ml::AttentionRegressor Model(Cfg);
  data::Dataset Train = tokenBlobs(2, 30, 10, R);
  for (auto &S : Train.samples())
    S.Target = static_cast<double>(S.Label) + 0.25;
  Model.fit(Train, R);

  data::Dataset Test = tokenBlobs(2, 12, 10, R);
  std::vector<double> Preds = Model.predictBatch(Test);
  support::Matrix Embeds = Model.embedBatch(Test);
  std::vector<double> Preds2;
  support::Matrix Embeds2;
  Model.predictWithEmbedBatch(Test, Preds2, Embeds2);
  for (size_t I = 0; I < Test.size(); ++I) {
    EXPECT_EQ(Model.predict(Test[I]), Preds[I]);
    EXPECT_EQ(Preds[I], Preds2[I]);
    std::vector<double> E = Model.embed(Test[I]);
    for (size_t D = 0; D < E.size(); ++D) {
      EXPECT_EQ(E[D], Embeds.at(I, D));
      EXPECT_EQ(E[D], Embeds2.at(I, D));
    }
  }
}

TEST(BatchEquivalenceTest, LstmPromCommitteeBitIdentical) {
  // The committee contract must hold end-to-end over a sequence model's
  // batched forwards too.
  support::Rng R(65);
  ml::LstmConfig Cfg;
  Cfg.EmbedDim = 8;
  Cfg.HiddenDim = 8;
  Cfg.MaxSeqLen = 12;
  Cfg.Epochs = 2;
  ml::LstmClassifier Model(Cfg);
  data::Dataset Full = tokenBlobs(3, 60, 10, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.4);
  Model.fit(Train, R);

  PromClassifier Prom(Model);
  Prom.calibrate(Calib);
  data::Dataset Test = tokenBlobs(3, 15, 10, R);
  checkClassifierEquivalence(Prom, Test);
}

TEST(BatchForwardTest, DefaultBatchLoopMatchesPerSample) {
  // A model without batch overrides goes through the default per-sample
  // loop; the contract must hold there too.
  support::Rng R(44);
  data::Dataset Train = gaussianBlobs(2, 80, 4.0, 0.7, R);
  ml::KnnClassifier Model(5);
  Model.fit(Train, R);
  data::Dataset Test = gaussianBlobs(2, 20, 4.0, 0.7, R);
  support::Matrix Probs = Model.predictProbaBatch(Test);
  for (size_t I = 0; I < Test.size(); ++I) {
    std::vector<double> P = Model.predictProba(Test[I]);
    for (size_t C = 0; C < P.size(); ++C)
      EXPECT_EQ(P[C], Probs.at(I, C));
  }
}

//===----------------------------------------------------------------------===//
// Classifier committee equivalence
//===----------------------------------------------------------------------===//

TEST(BatchEquivalenceTest, MlpClassifierBitIdentical) {
  support::Rng R(45);
  data::Dataset Full = gaussianBlobs(3, 300, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.3);
  ml::MlpClassifier Model;
  Model.fit(Train, R);

  PromClassifier Prom(Model);
  Prom.calibrate(Calib);
  checkClassifierEquivalence(Prom, mixedTestSet(120, R));
}

TEST(BatchEquivalenceTest, SubsetSelectionRegimeBitIdentical) {
  // > SelectAllBelow calibration samples: the nearest-50% partition (and
  // the distance weights) are exercised, not the select-all shortcut.
  support::Rng R(46);
  data::Dataset Full = gaussianBlobs(3, 300, 4.0, 0.9, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.5);
  ASSERT_GE(Calib.size(), 200u);
  ml::LogisticRegression Model;
  Model.fit(Train, R);

  PromClassifier Prom(Model);
  Prom.calibrate(Calib);
  checkClassifierEquivalence(Prom, mixedTestSet(150, R));
}

TEST(BatchEquivalenceTest, EveryWeightModeBitIdentical) {
  support::Rng R(47);
  data::Dataset Full = gaussianBlobs(3, 250, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.4);
  ml::LogisticRegression Model;
  Model.fit(Train, R);

  for (CalibrationWeightMode Mode :
       {CalibrationWeightMode::WeightedCount,
        CalibrationWeightMode::ScoreScaling, CalibrationWeightMode::None}) {
    SCOPED_TRACE(static_cast<int>(Mode));
    PromConfig Cfg;
    Cfg.WeightMode = Mode;
    PromClassifier Prom(Model, Cfg);
    Prom.calibrate(Calib);
    checkClassifierEquivalence(Prom, mixedTestSet(80, R));
  }
}

TEST(BatchEquivalenceTest, UnsmoothedAndUnanimityConfigsBitIdentical) {
  support::Rng R(48);
  data::Dataset Full = gaussianBlobs(3, 220, 4.0, 0.8, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.3);
  ml::LogisticRegression Model;
  Model.fit(Train, R);

  PromConfig Cfg;
  Cfg.SmoothedPValues = false;
  Cfg.MinVotesToFlag = 4;
  Cfg.AutoTau = false;
  Cfg.Tau = 100.0;
  PromClassifier Prom(Model, Cfg);
  Prom.calibrate(Calib);
  checkClassifierEquivalence(Prom, mixedTestSet(80, R));
}

TEST(BatchEquivalenceTest, GcnClassifierBitIdentical) {
  support::Rng R(49);
  data::Dataset Full = graphBlobs(130, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.3);
  ml::GcnClassifier Model;
  Model.fit(Train, R);

  PromClassifier Prom(Model);
  Prom.calibrate(Calib);
  data::Dataset Test = graphBlobs(40, R);
  checkClassifierEquivalence(Prom, Test);
}

//===----------------------------------------------------------------------===//
// Regressor committee equivalence
//===----------------------------------------------------------------------===//

TEST(BatchEquivalenceTest, MlpRegressorBitIdentical) {
  support::Rng R(50);
  data::Dataset Train = linearRegression(400, 0.1, R);
  data::Dataset Calib = linearRegression(150, 0.1, R);
  ml::MlpRegressor Model;
  Model.fit(Train, R);

  PromConfig Cfg;
  Cfg.FixedClusters = 4;
  PromRegressor Prom(Model, Cfg);
  Prom.calibrate(Calib, R);

  // Mix of in-distribution and shifted inputs.
  data::Dataset Test("reg-mixed", 0);
  for (int I = 0; I < 120; ++I) {
    data::Sample S;
    double Lo = I % 3 == 0 ? 5.0 : -2.0, Hi = I % 3 == 0 ? 9.0 : 2.0;
    S.Features = {R.uniform(Lo, Hi), R.uniform(Lo, Hi)};
    S.Target = 2.0 * S.Features[0] - S.Features[1];
    Test.add(std::move(S));
  }

  std::vector<RegressionVerdict> Batched = Prom.assessBatch(Test);
  ASSERT_EQ(Batched.size(), Test.size());
  for (size_t I = 0; I < Test.size(); ++I) {
    RegressionVerdict Serial = Prom.assessSerial(Test[I]);
    RegressionVerdict Single = Prom.assess(Test[I]);
    expectSameRegressionVerdict(Serial, Batched[I], I);
    expectSameRegressionVerdict(Single, Batched[I], I);
  }
}

TEST(BatchEquivalenceTest, KnnRegressorDefaultBatchPathBitIdentical) {
  support::Rng R(51);
  data::Dataset Train = linearRegression(300, 0.1, R);
  data::Dataset Calib = linearRegression(120, 0.1, R);
  ml::KnnRegressor Model(5);
  Model.fit(Train, R);

  PromRegressor Prom(Model);
  Prom.calibrate(Calib, R);
  data::Dataset Test = linearRegression(80, 0.1, R);

  std::vector<RegressionVerdict> Batched = Prom.assessBatch(Test);
  for (size_t I = 0; I < Test.size(); ++I)
    expectSameRegressionVerdict(Prom.assessSerial(Test[I]), Batched[I], I);
}

//===----------------------------------------------------------------------===//
// Detector adapters
//===----------------------------------------------------------------------===//

TEST(BatchEquivalenceTest, DriftDetectorBatchMatchesPerSample) {
  support::Rng R(52);
  data::Dataset Full = gaussianBlobs(3, 250, 4.0, 0.9, R);
  auto [Train, Calib] = data::calibrationPartition(Full, R, 0.25);
  ml::LogisticRegression Model;
  Model.fit(Train, R);

  PromDriftDetector Det(PromConfig(), /*AutoTune=*/false);
  Det.fit(Model, Calib, R);
  data::Dataset Test = mixedTestSet(100, R);

  std::vector<char> Batched = Det.isDriftingBatch(Test);
  ASSERT_EQ(Batched.size(), Test.size());
  for (size_t I = 0; I < Test.size(); ++I)
    EXPECT_EQ(Det.isDrifting(Test[I]), Batched[I] != 0) << "sample " << I;
}
