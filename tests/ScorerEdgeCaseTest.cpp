//===- tests/ScorerEdgeCaseTest.cpp - nonconformity edge cases ----------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Edge-case behaviour of the LAC/TopK/APS/RAPS committee on degenerate
// probability vectors — uniform, one-hot, and tie-heavy distributions —
// plus the isDiscrete() weighted-counting fallback those tie-heavy scores
// force inside CalibrationScores::pValues. scoreAll() must agree with
// score() bit-for-bit on every edge case, since the batched engine uses
// the fused form.
//
//===----------------------------------------------------------------------===//

#include "core/Calibration.h"
#include "core/Nonconformity.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

using namespace prom;

namespace {

std::vector<std::vector<double>> edgeCaseVectors() {
  return {
      {0.25, 0.25, 0.25, 0.25},          // Uniform.
      {1.0, 0.0, 0.0, 0.0},              // One-hot.
      {0.0, 0.0, 1.0, 0.0},              // One-hot, off-front.
      {0.5, 0.5, 0.0, 0.0},              // Two-way tie.
      {0.4, 0.4, 0.1, 0.1},              // Tie-heavy pairs.
      {1.0 / 3, 1.0 / 3, 1.0 / 3, 0.0},  // Three-way tie.
      {0.97, 0.01, 0.01, 0.01},          // Near one-hot with tied tail.
  };
}

} // namespace

//===----------------------------------------------------------------------===//
// Per-scorer edge cases
//===----------------------------------------------------------------------===//

TEST(ScorerEdgeCaseTest, UniformVector) {
  std::vector<double> Uniform = {0.25, 0.25, 0.25, 0.25};
  LacScorer Lac;
  TopKScorer TopK;
  ApsScorer Aps;
  RapsScorer Raps;
  for (int C = 0; C < 4; ++C) {
    // LAC: every label equally strange.
    EXPECT_DOUBLE_EQ(Lac.score(Uniform, C), 0.75);
    // TopK soft rank: p_j / p_label = 1 for all -> rank = numClasses.
    EXPECT_DOUBLE_EQ(TopK.score(Uniform, C), 4.0);
    // RAPS adds a positive penalty on top of APS for ranks above kReg.
    EXPECT_GT(Raps.score(Uniform, C), Aps.score(Uniform, C));
  }
  // APS with index tie-breaking: label c ranks c+1, mass above is c * 0.25.
  for (int C = 0; C < 4; ++C)
    EXPECT_NEAR(Aps.score(Uniform, C), C * 0.25 + 0.125, 1e-12);
}

TEST(ScorerEdgeCaseTest, OneHotVector) {
  std::vector<double> OneHot = {0.0, 1.0, 0.0};
  LacScorer Lac;
  TopKScorer TopK;
  ApsScorer Aps;
  EXPECT_DOUBLE_EQ(Lac.score(OneHot, 1), 0.0);
  EXPECT_DOUBLE_EQ(Lac.score(OneHot, 0), 1.0);
  // The hit label has hard rank 1. A zero-probability label also scores
  // ~1 — its own p/p ratio is 0 under the 1e-12 clamp, so only the winner
  // contributes — a known blind spot of the soft rank on degenerate
  // vectors; LAC and APS carry the signal for zero-mass labels.
  EXPECT_NEAR(TopK.score(OneHot, 1), 1.0, 1e-9);
  EXPECT_NEAR(TopK.score(OneHot, 0), 1.0, 1e-9);
  // APS half-inclusion keeps the winner at 0.5 instead of a degenerate 1.
  EXPECT_NEAR(Aps.score(OneHot, 1), 0.5, 1e-12);
  // A zero-probability label sits below the full mass.
  EXPECT_NEAR(Aps.score(OneHot, 0), 1.0, 1e-12);
}

TEST(ScorerEdgeCaseTest, TieHeavyVectorIsDeterministic) {
  // Exact ties must resolve by index, not by accident of evaluation order.
  std::vector<double> Tied = {0.5, 0.5, 0.0, 0.0};
  ApsScorer Aps;
  // Label 0 wins the tie (lower index): rank 1. Label 1 ranks 2.
  EXPECT_NEAR(Aps.score(Tied, 0), 0.25, 1e-12);
  EXPECT_NEAR(Aps.score(Tied, 1), 0.5 + 0.25, 1e-12);
  TopKScorer TopK;
  // Soft rank is index-free for exact ties: both tied labels score 2 + 0.
  EXPECT_DOUBLE_EQ(TopK.score(Tied, 0), TopK.score(Tied, 1));
}

TEST(ScorerEdgeCaseTest, ScoreAllMatchesScoreOnEdgeCases) {
  auto Scorers = defaultClassificationScorers();
  for (const auto &Probs : edgeCaseVectors()) {
    for (const auto &Scorer : Scorers) {
      std::vector<double> All(Probs.size());
      Scorer->scoreAll(Probs, All.data());
      for (size_t C = 0; C < Probs.size(); ++C)
        EXPECT_EQ(All[C], Scorer->score(Probs, static_cast<int>(C)))
            << Scorer->name() << " label " << C;
    }
  }
}

TEST(ScorerEdgeCaseTest, ScoresAreFiniteOnEveryEdgeCase) {
  auto Scorers = defaultClassificationScorers();
  for (const auto &Probs : edgeCaseVectors())
    for (const auto &Scorer : Scorers)
      for (size_t C = 0; C < Probs.size(); ++C)
        EXPECT_TRUE(
            std::isfinite(Scorer->score(Probs, static_cast<int>(C))))
            << Scorer->name();
}

//===----------------------------------------------------------------------===//
// The isDiscrete() weighted-counting fallback
//===----------------------------------------------------------------------===//

namespace {

/// A deliberately tie-heavy discrete scorer: the hard rank of the label.
/// Every confident prediction scores exactly 1, so the paper's literal
/// score-scaling adjustment (w * a_i >= a_test) flips every tie as soon as
/// any weight drops below 1 — the situation isDiscrete() exists for.
class HardRankScorer : public ClassificationScorer {
public:
  double score(const std::vector<double> &Probs, int Label) const override {
    double P = Probs[static_cast<size_t>(Label)];
    double Rank = 1.0;
    for (size_t C = 0; C < Probs.size(); ++C)
      if (Probs[C] > P ||
          (Probs[C] == P && C < static_cast<size_t>(Label)))
        Rank += 1.0;
    return Rank;
  }
  bool isDiscrete() const override { return true; }
  std::string name() const override { return "HardRank"; }
};

/// 1-D calibration set at x = 0..N-1, one expert, all scores \p Score.
CalibrationScores tiedCalib(size_t N, double Score) {
  CalibrationScores Calib;
  for (size_t I = 0; I < N; ++I) {
    CalibrationEntry E;
    E.Embed = {static_cast<double>(I)};
    E.Label = 0;
    E.Scores = {Score};
    Calib.add(std::move(E));
  }
  Calib.finalize();
  return Calib;
}

} // namespace

TEST(DiscreteFallbackTest, ScoreScalingCollapsesTiedPValuesWithoutFallback) {
  // Literal score scaling: any weight < 1 shrinks every tied calibration
  // score below the test score, so the p-value collapses toward 0 even
  // though the sample conforms perfectly.
  CalibrationScores Calib = tiedCalib(100, 1.0);
  PromConfig Cfg;
  Cfg.WeightMode = CalibrationWeightMode::ScoreScaling;
  Cfg.AutoTau = false;
  Cfg.Tau = 10.0;
  CalibrationSelection Sel = Calib.select({50.0}, Cfg);

  std::vector<double> NoFallback =
      Calib.pValues(Sel, 0, {1.0}, Cfg, /*DiscreteScores=*/false);
  std::vector<double> WithFallback =
      Calib.pValues(Sel, 0, {1.0}, Cfg, /*DiscreteScores=*/true);
  EXPECT_LT(NoFallback[0], 0.1);  // Ties flipped: spurious novelty.
  EXPECT_GT(WithFallback[0], 0.9); // Weighted counting keeps the ties.
}

TEST(DiscreteFallbackTest, FallbackOnlyAffectsScoreScaling) {
  CalibrationScores Calib = tiedCalib(50, 2.0);
  PromConfig Cfg;
  Cfg.WeightMode = CalibrationWeightMode::WeightedCount;
  CalibrationSelection Sel = Calib.select({10.0}, Cfg);
  std::vector<double> A = Calib.pValues(Sel, 0, {2.0}, Cfg, false);
  std::vector<double> B = Calib.pValues(Sel, 0, {2.0}, Cfg, true);
  EXPECT_EQ(A[0], B[0]); // WeightedCount is already tie-safe.
}

TEST(DiscreteFallbackTest, HardRankCommitteeSurvivesConfidentModel) {
  // End-to-end through the committee: a discrete expert on a model whose
  // outputs are one-hot-ish must not flag in-distribution inputs purely
  // because of tie flips.
  support::Rng R(61);
  CalibrationScores Calib;
  HardRankScorer Scorer;
  for (size_t I = 0; I < 120; ++I) {
    // Confident correct predictions: rank of the true label is 1.
    std::vector<double> Probs = {0.9, 0.05, 0.05};
    CalibrationEntry E;
    E.Embed = {R.gaussian(0.0, 1.0)};
    E.Label = 0;
    E.Scores = {Scorer.score(Probs, 0)};
    Calib.add(std::move(E));
  }
  Calib.finalize();

  PromConfig Cfg;
  Cfg.WeightMode = CalibrationWeightMode::ScoreScaling;
  std::vector<double> Probs = {0.85, 0.10, 0.05};
  std::vector<double> TestScores = {Scorer.score(Probs, 0),
                                    Scorer.score(Probs, 1),
                                    Scorer.score(Probs, 2)};
  CalibrationSelection Sel = Calib.select({0.2}, Cfg);
  std::vector<double> P =
      Calib.pValues(Sel, 0, TestScores, Cfg, Scorer.isDiscrete());
  EXPECT_GT(P[0], 0.5) << "tied rank-1 scores must stay conforming";
}
