//===- tests/FaultInjectionTest.cpp - armable failure points ------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The fault-injection registry must be deterministic under a fixed seed,
// zero-effect while disarmed, and the armed fault points must produce
// exactly the degraded-but-safe behavior the serving runtime promises:
// a failed snapshot write/commit leaves the previous committed generation
// loadable, torn and corrupted writes are caught by the checksummed load,
// an abandoned refresh keeps the engine serving bit-identical verdicts
// and requeues its batch, and a stalled batcher still answers correctly.
//
//===----------------------------------------------------------------------===//

#include "core/Detector.h"
#include "data/Split.h"
#include "ml/Linear.h"
#include "serve/AssessmentService.h"
#include "serve/RecalibrationController.h"
#include "serve/WindowedDriftMonitor.h"
#include "support/FaultInjection.h"
#include "support/Serialize.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace prom;
using namespace prom::serve;
using namespace prom::support;
using prom::testing::expectSameVerdict;
using prom::testing::gaussianBlobs;

namespace {

/// Calibrated classifier + probe set shared across the snapshot/serving
/// fault tests (engine state is never mutated by them).
struct EngineFixture {
  Rng R{205};
  data::Dataset Train, Calib, Probes;
  ml::LogisticRegression Model;
  std::unique_ptr<PromClassifier> Prom;

  EngineFixture() {
    data::Dataset Full = gaussianBlobs(3, 200, 4.0, 0.8, R);
    auto Split = data::calibrationPartition(Full, R, 0.35);
    Train = std::move(Split.first);
    Calib = std::move(Split.second);
    Model.fit(Train, R);
    PromConfig Cfg;
    Cfg.NumShards = 4;
    Prom = std::make_unique<PromClassifier>(Model, Cfg);
    Prom->calibrate(Calib);
    Probes = gaussianBlobs(3, 24, 4.0, 0.8, R);
  }
};

EngineFixture &fixture() {
  static EngineFixture F;
  return F;
}

/// Every test leaves the process with all faults disarmed, whatever path
/// it exits through — armed leftovers would poison unrelated suites.
class FaultInjectionTest : public ::testing::Test {
protected:
  void SetUp() override { faults::disarmAll(); }
  void TearDown() override { faults::disarmAll(); }

  std::string tempDir(const std::string &Name) {
    std::string Dir = ::testing::TempDir() + "/faults_" + Name;
    EXPECT_TRUE(ensureDirectory(Dir));
    return Dir;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Registry semantics
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, DisarmedPointsNeverFireOrCount) {
  EXPECT_FALSE(faults::shouldFail("snapshot_write"));
  EXPECT_EQ(faults::drawCount("snapshot_write"), 0u);
  EXPECT_TRUE(faults::armedPoints().empty());

  // Arming an unrelated point must not make other names fire.
  faults::arm("other_point");
  EXPECT_FALSE(faults::shouldFail("snapshot_write"));
  EXPECT_TRUE(faults::shouldFail("other_point"));

  faults::disarm("other_point");
  EXPECT_FALSE(faults::shouldFail("other_point"));
  EXPECT_TRUE(faults::armedPoints().empty());
}

TEST_F(FaultInjectionTest, ProbabilityExtremesAreDeterministic) {
  faults::arm("always", 1.0);
  faults::arm("never", 0.0);
  for (int I = 0; I < 32; ++I) {
    EXPECT_TRUE(faults::shouldFail("always"));
    EXPECT_FALSE(faults::shouldFail("never"));
  }
  EXPECT_EQ(faults::fireCount("always"), 32u);
  EXPECT_EQ(faults::drawCount("always"), 32u);
  EXPECT_EQ(faults::fireCount("never"), 0u);
  EXPECT_EQ(faults::drawCount("never"), 32u);

  // Out-of-range probabilities clamp.
  faults::arm("clamped_hi", 7.0);
  faults::arm("clamped_lo", -2.0);
  EXPECT_TRUE(faults::shouldFail("clamped_hi"));
  EXPECT_FALSE(faults::shouldFail("clamped_lo"));
}

TEST_F(FaultInjectionTest, SeededFiringReplaysExactly) {
  auto Pattern = [] {
    std::vector<bool> P;
    for (int I = 0; I < 64; ++I)
      P.push_back(faults::shouldFail("coin"));
    return P;
  };

  faults::seed(7);
  faults::arm("coin", 0.5);
  std::vector<bool> First = Pattern();

  faults::disarmAll();
  faults::seed(7);
  faults::arm("coin", 0.5);
  EXPECT_EQ(Pattern(), First);

  // A fair coin over 64 draws fires somewhere strictly inside (0, 64).
  uint64_t Fires = faults::fireCount("coin");
  EXPECT_GT(Fires, 0u);
  EXPECT_LT(Fires, 64u);
}

TEST_F(FaultInjectionTest, ProbabilityOnePointsDoNotPerturbTheStream) {
  // A probability-1 point consumes no draw from the shared stream, so
  // interleaving it with a probabilistic point leaves that point's firing
  // pattern untouched — fully-armed faults stay deterministic no matter
  // what else is armed.
  auto CoinPattern = [](bool Interleave) {
    std::vector<bool> P;
    for (int I = 0; I < 32; ++I) {
      if (Interleave)
        (void)faults::shouldFail("certain");
      P.push_back(faults::shouldFail("coin"));
    }
    return P;
  };

  faults::seed(11);
  faults::arm("coin", 0.5);
  std::vector<bool> Alone = CoinPattern(false);

  faults::disarmAll();
  faults::seed(11);
  faults::arm("coin", 0.5);
  faults::arm("certain", 1.0);
  EXPECT_EQ(CoinPattern(true), Alone);
  EXPECT_EQ(faults::fireCount("certain"), 32u);
}

TEST_F(FaultInjectionTest, ArmFromEnvParsesSpecAndSkipsMalformedEntries) {
  ::setenv("PROM_FAULTS", "alpha,beta:0.25,:0.5,gamma:junk,delta:2.5,,", 1);
  ::setenv("PROM_FAULTS_SEED", "42", 1);
  EXPECT_EQ(faults::armFromEnv(), 3u); // alpha, beta, delta.
  ::unsetenv("PROM_FAULTS");
  ::unsetenv("PROM_FAULTS_SEED");

  double Alpha = -1, Beta = -1, Delta = -1;
  size_t Armed = 0;
  for (const auto &KV : faults::armedPoints()) {
    ++Armed;
    if (KV.first == "alpha")
      Alpha = KV.second;
    else if (KV.first == "beta")
      Beta = KV.second;
    else if (KV.first == "delta")
      Delta = KV.second;
  }
  EXPECT_EQ(Armed, 3u);
  EXPECT_DOUBLE_EQ(Alpha, 1.0);
  EXPECT_DOUBLE_EQ(Beta, 0.25);
  EXPECT_DOUBLE_EQ(Delta, 1.0); // Clamped.

  // Absent variable arms nothing.
  EXPECT_EQ(faults::armFromEnv(), 0u);
}

//===----------------------------------------------------------------------===//
// Snapshot fault points: degraded writes must leave a loadable past
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, FailedWriteLeavesPreviousGenerationServing) {
  EngineFixture &F = fixture();
  std::string Dir = tempDir("write");
  std::vector<Verdict> Expected = F.Prom->assessBatch(F.Probes);

  // A healthy generation 1 first.
  std::string Gen1 = Dir + "/" + snapshotGenerationFile(1);
  ASSERT_TRUE(F.Prom->saveSnapshot(Gen1));
  ASSERT_TRUE(commitLatestPointer(Dir, 1));

  // Generation 2's write fails outright: no file, no pointer movement.
  faults::arm("snapshot_write");
  std::string Gen2 = Dir + "/" + snapshotGenerationFile(2);
  EXPECT_FALSE(F.Prom->saveSnapshot(Gen2));
  EXPECT_GE(faults::fireCount("snapshot_write"), 1u);
  faults::disarm("snapshot_write");

  // The resolver still hands out generation 1, and it restores verdicts
  // bit-identically.
  EXPECT_EQ(resolveLatestSnapshot(Dir), Gen1);
  PromClassifier Restored(F.Model);
  ASSERT_TRUE(Restored.loadSnapshot(Gen1));
  std::vector<Verdict> Got = Restored.assessBatch(F.Probes);
  for (size_t I = 0; I < Expected.size(); ++I)
    expectSameVerdict(Expected[I], Got[I], I);

  // Disarmed, the very same call succeeds.
  EXPECT_TRUE(F.Prom->saveSnapshot(Gen2));
  ASSERT_TRUE(commitLatestPointer(Dir, 2));
  EXPECT_EQ(resolveLatestSnapshot(Dir), Gen2);
}

TEST_F(FaultInjectionTest, TornWriteIsCaughtAndWalkedBack) {
  EngineFixture &F = fixture();
  std::string Dir = tempDir("torn");

  std::string Gen1 = Dir + "/" + snapshotGenerationFile(1);
  ASSERT_TRUE(F.Prom->saveSnapshot(Gen1));
  ASSERT_TRUE(commitLatestPointer(Dir, 1));

  // The torn write *reports success* — the process believed the snapshot
  // landed, and even committed the pointer to it. Only the checksummed
  // load knows better.
  faults::arm("snapshot_truncate");
  std::string Gen2 = Dir + "/" + snapshotGenerationFile(2);
  ASSERT_TRUE(F.Prom->saveSnapshot(Gen2));
  faults::disarm("snapshot_truncate");
  ASSERT_TRUE(commitLatestPointer(Dir, 2));

  PromClassifier Victim(F.Model);
  EXPECT_FALSE(Victim.loadSnapshot(Gen2));
  // The pointer names generation 2, but the resolver walks back to the
  // newest generation that actually loads.
  EXPECT_EQ(resolveLatestSnapshot(Dir), Gen1);
  PromClassifier Restored(F.Model);
  EXPECT_TRUE(Restored.loadSnapshot(resolveLatestSnapshot(Dir)));
}

TEST_F(FaultInjectionTest, SilentCorruptionFailsTheChecksum) {
  EngineFixture &F = fixture();
  std::string Dir = tempDir("corrupt");

  // Full-length file, one payload byte flipped after checksumming: the
  // size checks pass; only the checksum catches it.
  faults::arm("snapshot_corrupt");
  std::string Path = Dir + "/" + snapshotGenerationFile(1);
  ASSERT_TRUE(F.Prom->saveSnapshot(Path));
  faults::disarm("snapshot_corrupt");

  PromClassifier Victim(F.Model);
  EXPECT_FALSE(Victim.loadSnapshot(Path));
  EXPECT_EQ(resolveLatestSnapshot(Dir), "");
}

TEST_F(FaultInjectionTest, RenameFaultKeepsThePreviousPointer) {
  EngineFixture &F = fixture();
  std::string Dir = tempDir("rename");

  std::string Gen1 = Dir + "/" + snapshotGenerationFile(1);
  ASSERT_TRUE(F.Prom->saveSnapshot(Gen1));
  ASSERT_TRUE(commitLatestPointer(Dir, 1));

  std::string Gen2 = Dir + "/" + snapshotGenerationFile(2);
  ASSERT_TRUE(F.Prom->saveSnapshot(Gen2));
  faults::arm("snapshot_rename");
  EXPECT_FALSE(commitLatestPointer(Dir, 2));
  faults::disarm("snapshot_rename");

  // Generation 1 stays committed; the uncommitted (but valid) 2 is only a
  // fallback if 1 ever disappears.
  EXPECT_EQ(resolveLatestSnapshot(Dir), Gen1);
  EXPECT_TRUE(commitLatestPointer(Dir, 2));
  EXPECT_EQ(resolveLatestSnapshot(Dir), Gen2);
}

TEST_F(FaultInjectionTest, LoadFaultFailsCleanlyAndRecovers) {
  EngineFixture &F = fixture();
  std::string Dir = tempDir("load");

  std::string Gen1 = Dir + "/" + snapshotGenerationFile(1);
  ASSERT_TRUE(F.Prom->saveSnapshot(Gen1));
  ASSERT_TRUE(commitLatestPointer(Dir, 1));

  faults::arm("snapshot_load");
  PromClassifier Victim(F.Model);
  EXPECT_FALSE(Victim.loadSnapshot(Gen1));
  // Generation probing load-fails too: nothing resolves while armed.
  EXPECT_EQ(resolveLatestSnapshot(Dir), "");
  faults::disarm("snapshot_load");

  EXPECT_EQ(resolveLatestSnapshot(Dir), Gen1);
  EXPECT_TRUE(Victim.loadSnapshot(Gen1));
}

//===----------------------------------------------------------------------===//
// Controller + service fault points: degrade, never corrupt
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, AbandonedRefreshKeepsServingAndRequeues) {
  // A fresh engine (not the shared fixture): the refresh mutates
  // calibration state on the success path.
  Rng R(301);
  data::Dataset Full = gaussianBlobs(3, 200, 4.0, 0.8, R);
  auto Split = data::calibrationPartition(Full, R, 0.35);
  ml::LogisticRegression Model;
  Model.fit(Split.first, R);
  PromClassifier Prom(Model);
  Prom.calibrate(Split.second);
  size_t SizeBefore = Prom.calibrationSize();

  data::Dataset Probe = gaussianBlobs(3, 16, 4.0, 0.8, R);
  std::vector<Verdict> Before = Prom.assessBatch(Probe);

  WindowedDriftMonitor Monitor(DriftWindowConfig{64, 0.9, 64});
  RecalibrationConfig RCfg;
  RCfg.MinRefreshSamples = 8;
  RCfg.MaxRefreshAttempts = 2;
  RCfg.RefreshRetryBackoff = std::chrono::milliseconds(1);
  RecalibrationController Controller(Prom, Monitor, RCfg);

  faults::arm("refresh_throw");
  for (int I = 0; I < 8; ++I) {
    data::Sample S;
    S.Features = {R.gaussian(0.0, 0.5), R.gaussian(0.0, 0.5)};
    S.Label = 0;
    Controller.submitLabeled(S);
  }
  Controller.triggerRefresh();

  // Every attempt throws, so the batch is abandoned after the bounded
  // retries and requeued intact.
  RecalibrationStats Stats;
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  do {
    Stats = Controller.stats();
    if (Stats.RefreshesAbandoned >= 1)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  } while (std::chrono::steady_clock::now() < Deadline);
  ASSERT_EQ(Stats.RefreshesAbandoned, 1u);
  EXPECT_EQ(Stats.RefreshFailures, 2u); // MaxRefreshAttempts, all failed.
  EXPECT_EQ(Stats.RefreshesCompleted, 0u);
  EXPECT_EQ(Controller.pendingLabeled(), 8u); // Requeued, none lost.

  // The store never moved: bit-identical verdicts throughout the storm.
  EXPECT_EQ(Prom.calibrationSize(), SizeBefore);
  std::vector<Verdict> During = Prom.assessBatch(Probe);
  for (size_t I = 0; I < Before.size(); ++I)
    expectSameVerdict(Before[I], During[I], I);

  // Disarm and retrigger: the requeued batch folds in.
  faults::disarmAll();
  Controller.triggerRefresh();
  ASSERT_TRUE(Controller.waitForRefreshes(1, std::chrono::milliseconds(10000)));
  Stats = Controller.stats();
  EXPECT_EQ(Stats.RefreshesCompleted, 1u);
  EXPECT_EQ(Stats.SamplesFolded, 8u);
  EXPECT_EQ(Prom.calibrationSize(), SizeBefore + 8);
  EXPECT_EQ(Controller.pendingLabeled(), 0u);
}

TEST_F(FaultInjectionTest, StalledRefreshStillCompletes) {
  Rng R(317);
  data::Dataset Full = gaussianBlobs(3, 200, 4.0, 0.8, R);
  auto Split = data::calibrationPartition(Full, R, 0.35);
  ml::LogisticRegression Model;
  Model.fit(Split.first, R);
  PromClassifier Prom(Model);
  Prom.calibrate(Split.second);

  WindowedDriftMonitor Monitor(DriftWindowConfig{64, 0.9, 64});
  RecalibrationConfig RCfg;
  RCfg.MinRefreshSamples = 4;
  RecalibrationController Controller(Prom, Monitor, RCfg);

  faults::arm("refresh_stall");
  for (int I = 0; I < 4; ++I) {
    data::Sample S;
    S.Features = {R.gaussian(0.0, 0.5), R.gaussian(0.0, 0.5)};
    S.Label = 0;
    Controller.submitLabeled(S);
  }
  Controller.triggerRefresh();
  ASSERT_TRUE(Controller.waitForRefreshes(1, std::chrono::milliseconds(10000)));
  EXPECT_GE(faults::fireCount("refresh_stall"), 1u);
  EXPECT_EQ(Controller.stats().RefreshFailures, 0u); // Slow, not failed.
}

TEST_F(FaultInjectionTest, StalledBatcherStillAnswersBitIdentically) {
  EngineFixture &F = fixture();
  std::vector<Verdict> Direct = F.Prom->assessBatch(F.Probes);

  faults::arm("batcher_stall");
  ServiceConfig Cfg;
  Cfg.MaxBatch = 8;
  AssessmentService Svc(*F.Prom, Cfg);
  std::vector<std::future<Verdict>> Futures;
  for (const data::Sample &S : F.Probes.samples())
    Futures.push_back(Svc.submit(S));
  for (size_t I = 0; I < Futures.size(); ++I)
    expectSameVerdict(Direct[I], Futures[I].get(), I);
  Svc.shutdown();
  EXPECT_GE(faults::fireCount("batcher_stall"), 1u);
  EXPECT_EQ(Svc.stats().Completed, F.Probes.size());
}
