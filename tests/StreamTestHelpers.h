//===- tests/StreamTestHelpers.h - Synthetic drift streams -------*- C++ -*-===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic drift-stream generation shared by the drift
/// test suites and the drift_attr bench, so test and bench inputs cannot
/// diverge. A stream is a sequence of (feature vector, rejection flag)
/// observations: features are unit-variance Gaussians around fixed
/// per-dimension base means, a chosen subset of dimensions shifts by a
/// configured magnitude following a sudden / gradual / recurring drift
/// profile, and the rejection probability interpolates from a base rate
/// to a drifted rate with the same profile. Everything replays bit-for-
/// bit from the spec's seed; the randomized suites expose their failure
/// seed via the PROM_DRIFT_PROP_SEED environment knob (see envSeedOr).
///
/// Deliberately gtest-free so bench binaries can include it.
///
//===----------------------------------------------------------------------===//

#ifndef PROM_TESTS_STREAMTESTHELPERS_H
#define PROM_TESTS_STREAMTESTHELPERS_H

#include "support/Rng.h"

#include <cstdlib>
#include <vector>

namespace prom {
namespace testing {

/// Ground-truth drift profile of a synthetic stream.
enum class DriftShape { None, Sudden, Gradual, Recurring };

/// Display name of \p S ("none"/"sudden"/"gradual"/"recurring").
inline const char *driftShapeName(DriftShape S) {
  switch (S) {
  case DriftShape::None:
    return "none";
  case DriftShape::Sudden:
    return "sudden";
  case DriftShape::Gradual:
    return "gradual";
  case DriftShape::Recurring:
    return "recurring";
  }
  return "none";
}

/// Synthetic drift-stream parameters.
struct DriftStreamSpec {
  size_t Dims = 16;                  ///< Feature dimensions.
  std::vector<size_t> PerturbedDims; ///< Dimensions that actually drift.
  DriftShape Shape = DriftShape::Sudden;
  size_t DriftStart = 1024; ///< First observation index with drift > 0.
  double Magnitude = 4.0;   ///< Mean shift at full strength (sigma units).
  size_t RampLength = 512;  ///< Gradual: observations to full strength.
  size_t Period = 256;      ///< Recurring: on/off half-period length.
  double BaseRejectRate = 0.05;  ///< Committee rejection rate, in-dist.
  double DriftRejectRate = 0.35; ///< Rejection rate at full drift.
  uint64_t Seed = 1;             ///< Replays the stream bit-for-bit.
};

/// One observation of a synthetic stream.
struct DriftObservation {
  std::vector<double> Features; ///< The assessed feature vector.
  bool Rejected = false;        ///< The committee rejection flag.
  double Level = 0.0;           ///< Ground-truth drift strength in [0, 1].
};

/// Deterministic generator over a DriftStreamSpec; next() yields the
/// observations in order, replayable from the seed.
class DriftStreamGenerator {
public:
  explicit DriftStreamGenerator(DriftStreamSpec SpecIn)
      : Spec(std::move(SpecIn)), R(Spec.Seed) {}

  /// Fixed per-dimension base mean (distinct across dimensions so a
  /// mixed-up index is caught, stable so reference windows freeze it).
  static double baseMean(size_t Dim) {
    return 0.25 * static_cast<double>(Dim);
  }

  /// Ground-truth drift strength at observation index \p T.
  double levelAt(size_t T) const {
    if (Spec.Shape == DriftShape::None || T < Spec.DriftStart)
      return 0.0;
    size_t Since = T - Spec.DriftStart;
    switch (Spec.Shape) {
    case DriftShape::Sudden:
      return 1.0;
    case DriftShape::Gradual:
      return Spec.RampLength == 0
                 ? 1.0
                 : (Since >= Spec.RampLength
                        ? 1.0
                        : static_cast<double>(Since) /
                              static_cast<double>(Spec.RampLength));
    case DriftShape::Recurring:
      return Spec.Period == 0 || (Since / Spec.Period) % 2 == 0 ? 1.0 : 0.0;
    case DriftShape::None:
      break;
    }
    return 0.0;
  }

  /// Whether \p Dim is one of the truly perturbed dimensions.
  bool perturbed(size_t Dim) const {
    for (size_t D : Spec.PerturbedDims)
      if (D == Dim)
        return true;
    return false;
  }

  /// The next observation (deterministic from the seed).
  DriftObservation next() {
    DriftObservation Obs;
    Obs.Level = levelAt(T);
    Obs.Features.resize(Spec.Dims);
    for (size_t D = 0; D < Spec.Dims; ++D) {
      double Mean = baseMean(D);
      if (perturbed(D))
        Mean += Obs.Level * Spec.Magnitude;
      Obs.Features[D] = R.gaussian(Mean, 1.0);
    }
    double P = Spec.BaseRejectRate +
               Obs.Level * (Spec.DriftRejectRate - Spec.BaseRejectRate);
    Obs.Rejected = R.bernoulli(P);
    ++T;
    return Obs;
  }

  size_t index() const { return T; }             ///< Next index to emit.
  const DriftStreamSpec &spec() const { return Spec; } ///< The parameters.

private:
  DriftStreamSpec Spec;
  support::Rng R;
  size_t T = 0;
};

/// Reads a replay seed from environment variable \p Var (e.g.
/// PROM_DRIFT_PROP_SEED), falling back to \p Fallback when unset/empty.
inline uint64_t envSeedOr(const char *Var, uint64_t Fallback) {
  const char *V = std::getenv(Var);
  if (V == nullptr || *V == '\0')
    return Fallback;
  return std::strtoull(V, nullptr, 10);
}

} // namespace testing
} // namespace prom

#endif // PROM_TESTS_STREAMTESTHELPERS_H
