/*===- tests/CApiFleetTest.c - C99 fleet ABI round trip ------------*- C -*-===
 *
 * Part of the PROM reproduction. Distributed under the MIT license.
 *
 *===----------------------------------------------------------------------===*/
/*
 * Drives the fleet C ABI exactly the way a non-C++ host would: this
 * translation unit is strict C99 (no C++ anywhere) and registers two
 * tenants with different layouts behind one prom_fleet. For each tenant
 * it also keeps a dedicated prom_detector calibrated on the identical
 * rows, and requires every fleet verdict — single and batched, before
 * and after an evict -> snapshot-backed reload — to be bit-identical to
 * the dedicated detector's (doubles compared with memcmp, not ==).
 *
 * Built and registered from CMakeLists.txt with -std=c99; compilation of
 * this file is itself the header's C-cleanliness check for the test
 * binary (CI additionally compiles the header alone under -Werror).
 */

#include "core/CApi.h"

#include <math.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

static int Failures = 0;

#define CHECK(Cond)                                                            \
  do {                                                                         \
    if (!(Cond)) {                                                             \
      ++Failures;                                                              \
      fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #Cond);          \
    }                                                                          \
  } while (0)

static int sameBits(double A, double B) {
  return memcmp(&A, &B, sizeof(double)) == 0;
}

/* Deterministic splitmix-style generator so both the dedicated detector
 * and the fleet tenant see identical rows on every platform. */
static unsigned long long RngState;

static double nextUnit(void) {
  RngState += 0x9E3779B97F4A7C15ULL;
  unsigned long long Z = RngState;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  Z = Z ^ (Z >> 31);
  return (double)(Z >> 11) / 9007199254740992.0; /* [0, 1) */
}

/* One synthetic host-model output: a probability row peaked at Label
 * plus a Label-dependent embedding. Off-manifold rows (Label < 0) are
 * near-uniform with unclustered features, so some verdicts reject. */
static void makeRow(int NumClasses, int FeatureDim, int Label, double *Probs,
                    double *Features) {
  int C;
  double Total = 0.0;
  for (C = 0; C < NumClasses; ++C) {
    Probs[C] = 0.05 + 0.1 * nextUnit();
    if (C == Label)
      Probs[C] += 2.0 + nextUnit();
    Total += Probs[C];
  }
  for (C = 0; C < NumClasses; ++C)
    Probs[C] /= Total;
  for (C = 0; C < FeatureDim; ++C)
    Features[C] = (Label >= 0 ? 3.0 * Label : -2.0) + nextUnit() - 0.5;
}

struct Tenant {
  const char *Name;
  const char *Dir;
  int NumClasses;
  int FeatureDim;
  unsigned long long Seed;
  prom_detector *Dedicated; /* Reference detector, identical rows. */
};

enum { CALIB_ROWS = 96, QUERY_ROWS = 40, MAX_CLASSES = 4, MAX_DIM = 3 };

/* Calibrates a fresh detector on the tenant's deterministic row stream. */
static prom_detector *buildDetector(const struct Tenant *T) {
  prom_detector *D = prom_create(T->NumClasses, T->FeatureDim, 0.1);
  int I;
  double Probs[MAX_CLASSES], Features[MAX_DIM];
  if (D == NULL)
    return NULL;
  RngState = T->Seed;
  for (I = 0; I < CALIB_ROWS; ++I) {
    int Label = I % T->NumClasses;
    makeRow(T->NumClasses, T->FeatureDim, Label, Probs, Features);
    if (prom_add_calibration(D, Probs, Features, Label) != 0) {
      prom_destroy(D);
      return NULL;
    }
  }
  if (prom_finalize(D) != 0) {
    prom_destroy(D);
    return NULL;
  }
  return D;
}

/* Fills the tenant's deterministic query batch (in-distribution rows
 * interleaved with off-manifold ones). */
static void buildQueries(const struct Tenant *T, double *Probs,
                         double *Features) {
  int I;
  RngState = T->Seed ^ 0xABCDEF1234567890ULL;
  for (I = 0; I < QUERY_ROWS; ++I) {
    int Label = (I % 3 == 2) ? -1 : I % T->NumClasses;
    makeRow(T->NumClasses, T->FeatureDim, Label, Probs + I * T->NumClasses,
            Features + I * T->FeatureDim);
  }
}

/* Every fleet verdict for this tenant — single-query and whole-batch —
 * must match the dedicated detector bit for bit. */
static void checkTenantVerdicts(prom_fleet *F, const struct Tenant *T) {
  double Probs[QUERY_ROWS * MAX_CLASSES];
  double Features[QUERY_ROWS * MAX_DIM];
  int WantReject[QUERY_ROWS], GotReject[QUERY_ROWS];
  double WantCred[QUERY_ROWS], GotCred[QUERY_ROWS];
  double WantConf[QUERY_ROWS], GotConf[QUERY_ROWS];
  int I;

  buildQueries(T, Probs, Features);
  CHECK(prom_assess_batch(T->Dedicated, QUERY_ROWS, Probs, Features,
                          WantReject, WantCred, WantConf) == 0);
  CHECK(prom_fleet_assess_batch(F, T->Name, QUERY_ROWS, Probs, Features,
                                GotReject, GotCred, GotConf) == 0);
  for (I = 0; I < QUERY_ROWS; ++I) {
    CHECK(GotReject[I] == WantReject[I]);
    CHECK(sameBits(GotCred[I], WantCred[I]));
    CHECK(sameBits(GotConf[I], WantConf[I]));
  }
  for (I = 0; I < QUERY_ROWS; ++I) {
    double Cred = -1.0, Conf = -1.0;
    int Flag = prom_fleet_assess(F, T->Name, Probs + I * T->NumClasses,
                                 Features + I * T->FeatureDim, &Cred, &Conf);
    CHECK(Flag == WantReject[I]);
    CHECK(sameBits(Cred, WantCred[I]));
    CHECK(sameBits(Conf, WantConf[I]));
  }
}

int main(void) {
  struct Tenant Tenants[2];
  prom_fleet *F;
  int T, SawReject = 0, SawAccept = 0;

  Tenants[0].Name = "alpha";
  Tenants[0].Dir = "capi_fleet_alpha";
  Tenants[0].NumClasses = 3;
  Tenants[0].FeatureDim = 2;
  Tenants[0].Seed = 0x1111ULL;
  Tenants[1].Name = "beta";
  Tenants[1].Dir = "capi_fleet_beta";
  Tenants[1].NumClasses = 4;
  Tenants[1].FeatureDim = 3;
  Tenants[1].Seed = 0x2222ULL;

  /* Contract fixes pinned from C: a non-zero out-of-range epsilon is
   * rejected (0 still selects the default), and double-finalize is a
   * defined no-op. */
  CHECK(prom_create(3, 2, -1.0) == NULL);
  CHECK(prom_create(3, 2, 1.0) == NULL);
  CHECK(prom_create(3, 2, 42.0) == NULL);
  {
    prom_detector *D = prom_create(3, 2, 0.0);
    CHECK(D != NULL);
    prom_destroy(D);
  }

  F = prom_fleet_create(0);
  CHECK(F != NULL);

  for (T = 0; T < 2; ++T) {
    prom_detector *ForFleet;
    Tenants[T].Dedicated = buildDetector(&Tenants[T]);
    CHECK(Tenants[T].Dedicated != NULL);
    CHECK(prom_finalize(Tenants[T].Dedicated) == 0); /* No-op repeat. */

    CHECK(prom_fleet_register(F, Tenants[T].Name, Tenants[T].NumClasses,
                              Tenants[T].FeatureDim, 0.1,
                              Tenants[T].Dir) == 0);
    ForFleet = buildDetector(&Tenants[T]);
    CHECK(ForFleet != NULL);
    CHECK(prom_fleet_install(F, Tenants[T].Name, ForFleet) == 0);
    CHECK(prom_fleet_is_loaded(F, Tenants[T].Name) == 1);
  }
  CHECK(prom_fleet_register(F, "alpha", 3, 2, 0.1, NULL) != 0); /* Dup. */
  CHECK(prom_fleet_memory_bytes(F) > 0);

  /* Round 1: warm fleet vs dedicated detectors, both tenants. */
  for (T = 0; T < 2; ++T)
    checkTenantVerdicts(F, &Tenants[T]);

  /* Evict both (snapshot saved), then re-assess: the lazy snapshot
   * reload must land the identical bits. */
  for (T = 0; T < 2; ++T) {
    CHECK(prom_fleet_save(F, Tenants[T].Name) == 0);
    CHECK(prom_fleet_evict(F, Tenants[T].Name) == 0);
    CHECK(prom_fleet_is_loaded(F, Tenants[T].Name) == 0);
  }
  for (T = 0; T < 2; ++T) {
    checkTenantVerdicts(F, &Tenants[T]);
    CHECK(prom_fleet_is_loaded(F, Tenants[T].Name) == 1);
  }

  /* The same snapshots also serve the single-detector open path. */
  for (T = 0; T < 2; ++T) {
    prom_detector *Reopened =
        prom_open(Tenants[T].NumClasses, Tenants[T].FeatureDim, 0.1,
                  Tenants[T].Dir);
    double Probs[QUERY_ROWS * MAX_CLASSES];
    double Features[QUERY_ROWS * MAX_DIM];
    int I;
    CHECK(Reopened != NULL);
    if (Reopened == NULL)
      continue;
    buildQueries(&Tenants[T], Probs, Features);
    for (I = 0; I < QUERY_ROWS; ++I) {
      double WantCred = -1.0, WantConf = -1.0, Cred = -2.0, Conf = -2.0;
      int Want = prom_should_reject(Tenants[T].Dedicated,
                                    Probs + I * Tenants[T].NumClasses,
                                    Features + I * Tenants[T].FeatureDim,
                                    &WantCred, &WantConf);
      int Got = prom_should_reject(Reopened, Probs + I * Tenants[T].NumClasses,
                                   Features + I * Tenants[T].FeatureDim, &Cred,
                                   &Conf);
      CHECK(Want >= 0);
      CHECK(Got == Want);
      CHECK(sameBits(Cred, WantCred));
      CHECK(sameBits(Conf, WantConf));
      if (Want == 1)
        SawReject = 1;
      if (Want == 0)
        SawAccept = 1;
    }
    prom_destroy(Reopened);
  }
  /* The query mix must actually exercise both verdicts or the bit
   * comparisons above prove nothing. */
  CHECK(SawReject == 1);
  CHECK(SawAccept == 1);

  /* Error paths stay errors. */
  CHECK(prom_fleet_assess(F, "ghost", NULL, NULL, NULL, NULL) == -1);
  CHECK(prom_fleet_save(F, "ghost") != 0);
  CHECK(prom_fleet_evict(F, "ghost") != 0);
  CHECK(prom_fleet_is_loaded(F, "ghost") == 0);

  prom_fleet_destroy(F);
  for (T = 0; T < 2; ++T)
    prom_destroy(Tenants[T].Dedicated);

  if (Failures == 0) {
    printf("CApiFleetTest: all checks passed\n");
    return 0;
  }
  fprintf(stderr, "CApiFleetTest: %d check(s) failed\n", Failures);
  return 1;
}
