//===- tests/StoreTestHelpers.h - CalibrationStore test oracles ---*- C++ -*-===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared oracles of the CalibrationStore bit-identity suites (RefreshTest
/// and the randomized StorePropertyTest): synthetic entry builders, the
/// from-scratch reference store, and the exhaustive engine-level
/// comparison that drives both stores through the exact entry points the
/// batched assessment uses.
///
//===----------------------------------------------------------------------===//

#ifndef PROM_TESTS_STORETESTHELPERS_H
#define PROM_TESTS_STORETESTHELPERS_H

#include "core/CalibrationStore.h"
#include "core/PromConfig.h"
#include "support/Rng.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace prom {
namespace testing {

/// Random calibration entries; labels cycle over [0, NumLabels).
inline std::vector<CalibrationEntry> makeEntries(size_t N, size_t Dim,
                                                 int NumLabels, size_t NumExp,
                                                 support::Rng &R) {
  std::vector<CalibrationEntry> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    CalibrationEntry E;
    for (size_t D = 0; D < Dim; ++D)
      E.Embed.push_back(R.gaussian(0.0, 2.0));
    E.Label = static_cast<int>(I % static_cast<size_t>(NumLabels));
    for (size_t X = 0; X < NumExp; ++X)
      E.Scores.push_back(R.uniform(0.0, 1.0));
    Out.push_back(std::move(E));
  }
  return Out;
}

/// A fresh store finalized from scratch on \p Entries — the reference a
/// refreshed/resharded store must match bit for bit.
inline CalibrationStore
referenceStore(const std::vector<CalibrationEntry> &Entries, size_t K) {
  CalibrationStore Ref;
  Ref.reserve(Entries.size());
  for (const CalibrationEntry &E : Entries)
    Ref.add(E);
  Ref.finalize(K);
  return Ref;
}

/// Drives both stores through the exact engine entry points the batched
/// assessment uses (selection + fused all-expert p-values) and demands
/// bit-equality on everything a verdict is computed from.
inline void expectStoresBitIdentical(const CalibrationStore &Live,
                                     const CalibrationStore &Ref,
                                     const PromConfig &Cfg, support::Rng &R,
                                     const char *Tag) {
  SCOPED_TRACE(Tag);
  ASSERT_EQ(Live.size(), Ref.size());
  ASSERT_EQ(Live.embedDim(), Ref.embedDim());
  EXPECT_EQ(bits(Live.medianNNDist()), bits(Ref.medianNNDist()));

  size_t NumExp = Ref.numExperts();
  size_t NumLabels = static_cast<size_t>(Ref.flat().maxLabel() + 1);
  ASSERT_EQ(static_cast<size_t>(Live.flat().maxLabel() + 1), NumLabels);
  size_t Cells = NumExp * NumLabels;

  AssessmentScratch SLive, SRef;
  std::vector<double> TestScores(Cells), PLive(Cells), PRef(Cells);
  for (int Q = 0; Q < 6; ++Q) {
    SCOPED_TRACE("query " + std::to_string(Q));
    std::vector<double> Query;
    for (size_t D = 0; D < Ref.embedDim(); ++D)
      Query.push_back(R.gaussian(0.0, 2.0));
    for (double &S : TestScores)
      S = R.uniform(0.0, 1.0);

    Live.selectForAssessment(Query.data(), Cfg, SLive);
    Ref.selectForAssessment(Query.data(), Cfg, SRef);
    ASSERT_EQ(SLive.Keep, SRef.Keep);
    ASSERT_EQ(SLive.SelectedAll, SRef.SelectedAll);
    for (size_t I = 0; I < Ref.size(); ++I) {
      ASSERT_EQ(SLive.SelectedMask[I], SRef.SelectedMask[I]) << "entry " << I;
      if (SRef.SelectedMask[I]) {
        ASSERT_EQ(bits(SLive.WeightByEntry[I]), bits(SRef.WeightByEntry[I]))
            << "entry " << I;
      }
    }

    Live.pValuesAllExperts(SLive, TestScores.data(), NumLabels, Cfg,
                           /*DiscreteFlags=*/nullptr, PLive.data());
    Ref.pValuesAllExperts(SRef, TestScores.data(), NumLabels, Cfg,
                          /*DiscreteFlags=*/nullptr, PRef.data());
    for (size_t C = 0; C < Cells; ++C)
      ASSERT_EQ(bits(PLive[C]), bits(PRef[C])) << "cell " << C;
  }
}

/// Runs the comparison under both p-value regimes: the general weighted
/// path (canonical block fold) and the unweighted full-selection fast
/// path (per-shard sorted-index counts).
inline void expectBothRegimesMatch(const CalibrationStore &Live,
                                   const CalibrationStore &Ref,
                                   uint64_t Seed, const char *Tag) {
  PromConfig Weighted; // Default: WeightedCount, partial selection.
  support::Rng R1(Seed);
  expectStoresBitIdentical(Live, Ref, Weighted, R1,
                           (std::string(Tag) + "/weighted").c_str());

  PromConfig Unweighted;
  Unweighted.WeightMode = CalibrationWeightMode::None;
  Unweighted.SelectAllBelow = 1u << 20; // Full selection: fast path.
  support::Rng R2(Seed);
  expectStoresBitIdentical(Live, Ref, Unweighted, R2,
                           (std::string(Tag) + "/unweighted-fast").c_str());
}

} // namespace testing
} // namespace prom

#endif // PROM_TESTS_STORETESTHELPERS_H
