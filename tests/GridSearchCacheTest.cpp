//===- tests/GridSearchCacheTest.cpp - grid-search forward reuse --------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Grid search sweeps dozens of candidate configurations over the same
// internal validation half; the model's forwards do not depend on the
// candidate, so they must be computed once per fold and reused — not once
// per (fold, candidate). A counting mock model enforces the call budget.
//
//===----------------------------------------------------------------------===//

#include "core/Detector.h"
#include "core/GridSearch.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace prom;

namespace {

/// Deterministic 2-class model that counts every forward entry point.
class CountingModel : public ml::Classifier {
public:
  mutable size_t PerSampleProba = 0;
  mutable size_t PerSampleEmbed = 0;
  mutable size_t BatchProba = 0;
  mutable size_t BatchEmbed = 0;
  mutable size_t BatchCombined = 0;

  void fit(const data::Dataset &, support::Rng &) override {}

  /// Runs the default per-sample fallback without letting its internal
  /// predictProba/embed calls inflate the per-sample counters. (Defined
  /// before its uses so the auto return type deduces.)
  template <typename FnT> auto countFree(FnT Fn) const {
    size_t Proba = PerSampleProba, Embed = PerSampleEmbed;
    auto Result = Fn();
    PerSampleProba = Proba;
    PerSampleEmbed = Embed;
    return Result;
  }

  std::vector<double> predictProba(const data::Sample &S) const override {
    ++PerSampleProba;
    double P0 = 1.0 / (1.0 + std::exp(-S.Features[0]));
    return {P0, 1.0 - P0};
  }

  std::vector<double> embed(const data::Sample &S) const override {
    ++PerSampleEmbed;
    return S.Features;
  }

  support::Matrix
  predictProbaBatch(const data::Dataset &Batch) const override {
    ++BatchProba;
    return countFree([&] { return Classifier::predictProbaBatch(Batch); });
  }

  support::Matrix embedBatch(const data::Dataset &Batch) const override {
    ++BatchEmbed;
    return countFree([&] { return Classifier::embedBatch(Batch); });
  }

  void predictWithEmbedBatch(const data::Dataset &Batch,
                             support::Matrix &Probs,
                             support::Matrix &Embeds) const override {
    ++BatchCombined;
    countFree([&] {
      Probs = Classifier::predictProbaBatch(Batch);
      Embeds = Classifier::embedBatch(Batch);
      return 0;
    });
  }

  int numClasses() const override { return 2; }
  std::string name() const override { return "CountingMock"; }
};

} // namespace

TEST(GridSearchCacheTest, ModelForwardsDoNotScaleWithCandidates) {
  support::Rng R(17);
  data::Dataset Calib("mock", 2);
  for (int I = 0; I < 120; ++I) {
    data::Sample S;
    S.Features = {R.gaussian(I % 2 == 0 ? -1.2 : 1.2, 1.0),
                  R.gaussian(0.0, 1.0)};
    S.Label = I % 2;
    Calib.add(std::move(S));
  }

  CountingModel Model;
  GridSearchSpace Space; // 6 x 3 x 3 = 54 candidates.
  size_t NumCandidates = Space.Epsilons.size() *
                         Space.ConfThresholds.size() * Space.Taus.size();
  ASSERT_GT(NumCandidates, 10u);

  const size_t Repeats = 2;
  GridSearchResult Result =
      gridSearch(Model, Calib, Space, PromConfig(), R, Repeats);
  EXPECT_EQ(Result.NumEvaluated, NumCandidates);

  // Per fold: one combined batch forward to calibrate, one to precompute
  // the validation-half forwards shared by all candidates.
  EXPECT_EQ(Model.BatchCombined, 2 * Repeats);
  EXPECT_EQ(Model.BatchProba, 0u);
  EXPECT_EQ(Model.BatchEmbed, 0u);

  // The per-sample entry points must not have been hit per candidate:
  // anything proportional to NumCandidates x validation size (24 x 54
  // > 1000 here) means the cache is gone.
  EXPECT_EQ(Model.PerSampleProba, 0u);
  EXPECT_EQ(Model.PerSampleEmbed, 0u);
}

TEST(GridSearchCacheTest, CachedForwardsMatchUncachedVerdicts) {
  // Equivalence guard: assessBatchWithForwards over precomputed forwards
  // must equal assessBatch on the dataset, bit for bit.
  support::Rng R(18);
  data::Dataset Data("mock", 2);
  for (int I = 0; I < 200; ++I) {
    data::Sample S;
    S.Features = {R.gaussian(I % 2 == 0 ? -1.0 : 1.0, 1.0),
                  R.gaussian(0.0, 1.0)};
    S.Label = I % 2;
    Data.add(std::move(S));
  }
  CountingModel Model;
  PromClassifier Prom(Model);
  Prom.calibrate(Data);

  data::Dataset Probe("mock", 2);
  for (int I = 0; I < 40; ++I) {
    data::Sample S;
    S.Features = {R.gaussian(0.0, 2.0), R.gaussian(0.0, 2.0)};
    S.Label = 0;
    Probe.add(std::move(S));
  }

  std::vector<Verdict> ViaDataset = Prom.assessBatch(Probe);
  support::Matrix RawProbs, Embeds;
  Model.predictWithEmbedBatch(Probe, RawProbs, Embeds);
  std::vector<Verdict> ViaForwards =
      Prom.assessBatchWithForwards(RawProbs, Embeds);

  ASSERT_EQ(ViaDataset.size(), ViaForwards.size());
  for (size_t I = 0; I < ViaDataset.size(); ++I) {
    SCOPED_TRACE("sample " + std::to_string(I));
    EXPECT_EQ(ViaDataset[I].Predicted, ViaForwards[I].Predicted);
    EXPECT_EQ(ViaDataset[I].Drifted, ViaForwards[I].Drifted);
    ASSERT_EQ(ViaDataset[I].Experts.size(), ViaForwards[I].Experts.size());
    for (size_t E = 0; E < ViaDataset[I].Experts.size(); ++E) {
      EXPECT_EQ(ViaDataset[I].Experts[E].Credibility,
                ViaForwards[I].Experts[E].Credibility);
      EXPECT_EQ(ViaDataset[I].Experts[E].Confidence,
                ViaForwards[I].Experts[E].Confidence);
    }
  }
}
