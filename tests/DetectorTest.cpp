//===- tests/DetectorTest.cpp - PromClassifier/PromRegressor tests ------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Detector.h"
#include "data/Split.h"
#include "ml/Knn.h"
#include "ml/Linear.h"
#include "ml/Mlp.h"
#include "support/Rng.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace prom;
using prom::testing::gaussianBlobs;
using prom::testing::linearRegression;

namespace {

/// Trains a moderately-regularized logistic model (soft probabilities,
/// like the paper's imperfect underlying models) and calibrates PROM.
struct Fixture {
  support::Rng R{1234};
  data::Dataset Train, Calib;
  ml::LogisticRegression Model;

  explicit Fixture(double Sigma = 0.8) {
    ml::LinearConfig Cfg;
    Cfg.Epochs = 30;
    Cfg.WeightDecay = 3e-2;
    Model = ml::LogisticRegression(Cfg);
    data::Dataset Full = gaussianBlobs(3, 250, 4.0, Sigma, R);
    auto Split = data::calibrationPartition(Full, R, 0.2);
    Train = std::move(Split.first);
    Calib = std::move(Split.second);
    Model.fit(Train, R);
  }
};

} // namespace

TEST(PromClassifierTest, AssessBeforeCalibrateAsserts) {
  Fixture F;
  PromClassifier Prom(F.Model);
  EXPECT_FALSE(Prom.isCalibrated());
}

TEST(PromClassifierTest, VerdictShapes) {
  Fixture F;
  PromClassifier Prom(F.Model);
  Prom.calibrate(F.Calib);
  Verdict V = Prom.assess(F.Train[0]);
  EXPECT_EQ(V.Experts.size(), 4u);
  EXPECT_EQ(V.Probabilities.size(), 3u);
  EXPECT_GE(V.Predicted, 0);
  for (const ExpertOpinion &E : V.Experts) {
    EXPECT_GE(E.Credibility, 0.0);
    EXPECT_LE(E.Credibility, 1.0);
    EXPECT_GE(E.Confidence, 0.0);
    EXPECT_LE(E.Confidence, 1.0);
  }
}

TEST(PromClassifierTest, PredictionMatchesUnderlyingModel) {
  Fixture F;
  PromClassifier Prom(F.Model);
  Prom.calibrate(F.Calib);
  for (int I = 0; I < 50; ++I) {
    const data::Sample &S = F.Train[static_cast<size_t>(I)];
    EXPECT_EQ(Prom.assess(S).Predicted, F.Model.predict(S));
  }
}

TEST(PromClassifierTest, LowFalsePositiveRateInDistribution) {
  Fixture F(/*Sigma=*/0.7);
  PromClassifier Prom(F.Model);
  Prom.calibrate(F.Calib);
  size_t FlaggedCorrect = 0, Correct = 0;
  data::Dataset Test = gaussianBlobs(3, 80, 4.0, 0.7, F.R);
  for (const data::Sample &S : Test.samples()) {
    Verdict V = Prom.assess(S);
    if (V.Predicted != S.Label)
      continue;
    ++Correct;
    if (V.Drifted)
      ++FlaggedCorrect;
  }
  ASSERT_GT(Correct, 100u);
  // Paper reports an average false-positive rate below ~14%; allow a
  // generous per-model margin.
  EXPECT_LT(static_cast<double>(FlaggedCorrect) /
                static_cast<double>(Correct),
            0.25);
}

TEST(PromClassifierTest, FlagsNovelPatternMoreThanInDistribution) {
  Fixture F;
  PromClassifier Prom(F.Model);
  Prom.calibrate(F.Calib);

  size_t FlaggedIn = 0, FlaggedNovel = 0;
  const size_t N = 200;
  for (size_t I = 0; I < N; ++I) {
    data::Sample In = gaussianBlobs(3, 1, 4.0, 0.8, F.R)[0];
    if (Prom.assess(In).Drifted)
      ++FlaggedIn;
    // Novel pattern: the empty centre of the class circle.
    data::Sample Novel;
    Novel.Features = {F.R.gaussian(0.0, 0.7), F.R.gaussian(0.0, 0.7)};
    Novel.Label = 0;
    if (Prom.assess(Novel).Drifted)
      ++FlaggedNovel;
  }
  EXPECT_GT(FlaggedNovel, FlaggedIn * 2);
}

TEST(PromClassifierTest, ConfigurableVoteThreshold) {
  Fixture F;
  PromConfig Strict;
  Strict.MinVotesToFlag = 4; // Unanimity.
  PromConfig Loose;
  Loose.MinVotesToFlag = 1; // Any expert.
  PromClassifier PStrict(F.Model, Strict), PLoose(F.Model, Loose);
  PStrict.calibrate(F.Calib);
  PLoose.calibrate(F.Calib);

  size_t StrictFlags = 0, LooseFlags = 0;
  for (int I = 0; I < 100; ++I) {
    data::Sample Novel;
    Novel.Features = {F.R.gaussian(0.0, 1.0), F.R.gaussian(0.0, 1.0)};
    Novel.Label = 0;
    if (PStrict.assess(Novel).Drifted)
      ++StrictFlags;
    if (PLoose.assess(Novel).Drifted)
      ++LooseFlags;
  }
  EXPECT_LE(StrictFlags, LooseFlags);
}

TEST(PromClassifierTest, RecalibrationReflectsNewData) {
  Fixture F;
  PromClassifier Prom(F.Model);
  Prom.calibrate(F.Calib);
  // Recalibrate with a tiny subset: p-values get coarser but stay valid.
  data::Dataset Small = F.Calib.subset({0, 1, 2, 3, 4, 5, 6, 7});
  Prom.calibrate(Small);
  Verdict V = Prom.assess(F.Train[0]);
  EXPECT_EQ(V.Experts.size(), 4u);
}

TEST(PromClassifierTest, CustomCommitteeSize) {
  Fixture F;
  std::vector<std::unique_ptr<ClassificationScorer>> One;
  One.push_back(std::make_unique<LacScorer>());
  PromClassifier Prom(F.Model, std::move(One), PromConfig());
  Prom.calibrate(F.Calib);
  EXPECT_EQ(Prom.numExperts(), 1u);
  EXPECT_EQ(Prom.assess(F.Train[0]).Experts.size(), 1u);
}

//===----------------------------------------------------------------------===//
// CP validity property (parameterized over epsilon): the epsilon-level
// prediction region must cover the true label with probability ~1-epsilon
// on exchangeable data. This is the paper's Eq. (3) guarantee.
//===----------------------------------------------------------------------===//

class CoverageProperty : public ::testing::TestWithParam<double> {};

TEST_P(CoverageProperty, MarginalCoverageNearTarget) {
  double Epsilon = GetParam();
  Fixture F;
  PromConfig Cfg;
  Cfg.Epsilon = Epsilon;
  PromClassifier Prom(F.Model, Cfg);
  Prom.calibrate(F.Calib);

  data::Dataset Test = gaussianBlobs(3, 150, 4.0, 0.8, F.R);
  double Covered = 0.0, Total = 0.0;
  for (const data::Sample &S : Test.samples()) {
    // LAC expert (continuous scores): the canonical coverage check.
    std::vector<double> P = Prom.pValues(S, 0);
    Covered += P[static_cast<size_t>(S.Label)] > Epsilon ? 1.0 : 0.0;
    Total += 1.0;
  }
  double Coverage = Covered / Total;
  EXPECT_NEAR(Coverage, 1.0 - Epsilon, 0.08)
      << "epsilon=" << Epsilon;
}

INSTANTIATE_TEST_SUITE_P(EpsilonSweep, CoverageProperty,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3),
                         [](const ::testing::TestParamInfo<double> &Info) {
                           return "eps" +
                                  std::to_string(
                                      static_cast<int>(Info.param * 100));
                         });

//===----------------------------------------------------------------------===//
// P-value distribution property: on exchangeable data the smoothed LAC
// p-value of the true label should be roughly uniform.
//===----------------------------------------------------------------------===//

TEST(PValueProperty, RoughlyUniformUnderExchangeability) {
  Fixture F;
  PromClassifier Prom(F.Model);
  Prom.calibrate(F.Calib);

  data::Dataset Test = gaussianBlobs(3, 200, 4.0, 0.8, F.R);
  std::vector<double> PVals;
  for (const data::Sample &S : Test.samples())
    PVals.push_back(Prom.pValues(S, 0)[static_cast<size_t>(S.Label)]);

  // Quartile occupancy within generous bounds.
  size_t Buckets[4] = {0, 0, 0, 0};
  for (double P : PVals)
    ++Buckets[std::min<size_t>(3, static_cast<size_t>(P * 4.0))];
  for (size_t B : Buckets) {
    double Frac = static_cast<double>(B) / PVals.size();
    EXPECT_GT(Frac, 0.10);
    EXPECT_LT(Frac, 0.45);
  }
}

//===----------------------------------------------------------------------===//
// PromRegressor
//===----------------------------------------------------------------------===//

TEST(PromRegressorTest, VerdictShapesAndClusters) {
  support::Rng R(7);
  data::Dataset Train = linearRegression(400, 0.1, R);
  data::Dataset Calib = linearRegression(150, 0.1, R);
  ml::KnnRegressor Model(5);
  Model.fit(Train, R);

  PromConfig Cfg;
  Cfg.FixedClusters = 4;
  PromRegressor Prom(Model, Cfg);
  Prom.calibrate(Calib, R);
  EXPECT_EQ(Prom.numClusters(), 4u);

  RegressionVerdict V = Prom.assess(Train[0]);
  EXPECT_EQ(V.Experts.size(), 4u);
  EXPECT_GE(V.Cluster, 0);
  EXPECT_LT(V.Cluster, 4);
}

TEST(PromRegressorTest, GapStatisticPicksClusterCount) {
  support::Rng R(8);
  data::Dataset Train = linearRegression(300, 0.1, R);
  data::Dataset Calib = linearRegression(120, 0.1, R);
  ml::KnnRegressor Model(5);
  Model.fit(Train, R);
  PromConfig Cfg; // FixedClusters = 0 -> gap statistic.
  Cfg.MaxClusters = 8;
  PromRegressor Prom(Model, Cfg);
  Prom.calibrate(Calib, R);
  EXPECT_GE(Prom.numClusters(), 1u);
  EXPECT_LE(Prom.numClusters(), 8u);
}

TEST(PromRegressorTest, FlagsShiftedInputs) {
  support::Rng R(9);
  data::Dataset Train = linearRegression(400, 0.1, R);
  data::Dataset Calib = linearRegression(150, 0.1, R);
  // A parametric model: it extrapolates into the shifted region while the
  // k-NN ground-truth approximation stays anchored to the calibration
  // manifold, so the residual experts see the drift. (A k-NN *model* would
  // be circular with the k-NN approximation — only the feature-distance
  // expert can see drift there.)
  ml::MlpRegressor Model;
  Model.fit(Train, R);
  PromRegressor Prom(Model);
  Prom.calibrate(Calib, R);

  size_t FlaggedIn = 0, FlaggedShifted = 0;
  const size_t N = 150;
  for (size_t I = 0; I < N; ++I) {
    data::Sample In;
    double X0 = R.uniform(-2.0, 2.0), X1 = R.uniform(-2.0, 2.0);
    In.Features = {X0, X1};
    In.Target = 2.0 * X0 - X1;
    if (Prom.assess(In).Drifted)
      ++FlaggedIn;

    // Deployment shift: inputs from a region (and target relation) the
    // model never saw.
    data::Sample Out;
    X0 = R.uniform(6.0, 10.0);
    X1 = R.uniform(6.0, 10.0);
    Out.Features = {X0, X1};
    Out.Target = -3.0 * X0 + X1;
    if (Prom.assess(Out).Drifted)
      ++FlaggedShifted;
  }
  EXPECT_LT(FlaggedIn, N / 4);
  EXPECT_GT(FlaggedShifted, N / 2);
}

TEST(PromRegressorTest, PredictionMatchesModel) {
  support::Rng R(10);
  data::Dataset Train = linearRegression(200, 0.1, R);
  data::Dataset Calib = linearRegression(80, 0.1, R);
  ml::KnnRegressor Model(3);
  Model.fit(Train, R);
  PromRegressor Prom(Model);
  Prom.calibrate(Calib, R);
  for (int I = 0; I < 20; ++I) {
    const data::Sample &S = Train[static_cast<size_t>(I)];
    EXPECT_DOUBLE_EQ(Prom.assess(S).Predicted, Model.predict(S));
  }
}

//===----------------------------------------------------------------------===//
// PromDriftDetector adapter
//===----------------------------------------------------------------------===//

TEST(PromDriftDetectorTest, MatchesPromClassifierDecision) {
  Fixture F;
  // AutoTune off so the adapter and the bare PromClassifier share the
  // exact same configuration.
  PromDriftDetector Det(PromConfig(), /*AutoTune=*/false);
  Det.fit(F.Model, F.Calib, F.R);
  PromClassifier Prom(F.Model);
  Prom.calibrate(F.Calib);
  for (int I = 0; I < 30; ++I) {
    const data::Sample &S = F.Train[static_cast<size_t>(I)];
    EXPECT_EQ(Det.isDrifting(S), Prom.assess(S).Drifted);
  }
}
