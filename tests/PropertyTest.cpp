//===- tests/PropertyTest.cpp - cross-configuration property sweeps -----------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Parameterized property tests sweeping PROM's configuration axes: the CP
// validity guarantee and the detector's basic sanity must hold under every
// weight mode, selection fraction, committee size and scorer — not just
// the defaults. Also covers the C ABI and the temperature-scaling
// behaviour.
//
//===----------------------------------------------------------------------===//

#include "core/CApi.h"
#include "core/Detector.h"
#include "data/Split.h"
#include "ml/HostModel.h"
#include "ml/Linear.h"
#include "support/Rng.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

using namespace prom;
using prom::testing::gaussianBlobs;

namespace {

struct SharedFixture {
  support::Rng R{555};
  data::Dataset Train, Calib, Test;
  ml::LogisticRegression Model;

  SharedFixture() {
    ml::LinearConfig Cfg;
    Cfg.Epochs = 30;
    Cfg.WeightDecay = 3e-2;
    Model = ml::LogisticRegression(Cfg);
    data::Dataset Full = gaussianBlobs(4, 220, 4.0, 0.9, R);
    auto Split = data::calibrationPartition(Full, R, 0.25);
    Train = std::move(Split.first);
    Calib = std::move(Split.second);
    Model.fit(Train, R);
    Test = gaussianBlobs(4, 80, 4.0, 0.9, R);
  }
};

SharedFixture &fixture() {
  static SharedFixture S;
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Validity across (weight mode x selection fraction): the true-label
// epsilon-region coverage must stay near 1 - epsilon for every mode.
//===----------------------------------------------------------------------===//

using ModeFraction = std::tuple<CalibrationWeightMode, double>;

class WeightModeCoverage : public ::testing::TestWithParam<ModeFraction> {};

TEST_P(WeightModeCoverage, CoverageHolds) {
  SharedFixture &S = fixture();
  PromConfig Cfg;
  Cfg.WeightMode = std::get<0>(GetParam());
  Cfg.SelectFraction = std::get<1>(GetParam());
  Cfg.SelectAllBelow = 10; // Force the adaptive selection path.
  PromClassifier Prom(S.Model, Cfg);
  Prom.calibrate(S.Calib);

  double Covered = 0.0, Total = 0.0;
  for (const data::Sample &Smp : S.Test.samples()) {
    std::vector<double> P = Prom.pValues(Smp, 0); // LAC expert.
    Covered += P[static_cast<size_t>(Smp.Label)] > Cfg.Epsilon ? 1 : 0;
    Total += 1.0;
  }
  // Weighted/selected variants are approximations of exchangeability, so
  // the tolerance is looser than the exact split-CP bound.
  EXPECT_GT(Covered / Total, 1.0 - Cfg.Epsilon - 0.12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightModeCoverage,
    ::testing::Combine(
        ::testing::Values(CalibrationWeightMode::WeightedCount,
                          CalibrationWeightMode::ScoreScaling,
                          CalibrationWeightMode::None),
        ::testing::Values(0.25, 0.5, 1.0)),
    [](const ::testing::TestParamInfo<ModeFraction> &Info) {
      const char *Mode =
          std::get<0>(Info.param) == CalibrationWeightMode::WeightedCount
              ? "WeightedCount"
          : std::get<0>(Info.param) == CalibrationWeightMode::ScoreScaling
              ? "ScoreScaling"
              : "None";
      return std::string(Mode) + "_frac" +
             std::to_string(
                 static_cast<int>(std::get<1>(Info.param) * 100));
    });

//===----------------------------------------------------------------------===//
// Per-expert p-value sanity across all four scorers.
//===----------------------------------------------------------------------===//

class PerExpertProperty : public ::testing::TestWithParam<int> {};

TEST_P(PerExpertProperty, PValuesAreProbabilities) {
  SharedFixture &S = fixture();
  PromClassifier Prom(S.Model);
  Prom.calibrate(S.Calib);
  size_t Expert = static_cast<size_t>(GetParam());
  for (int I = 0; I < 60; ++I) {
    std::vector<double> P =
        Prom.pValues(S.Test[static_cast<size_t>(I)], Expert);
    ASSERT_EQ(P.size(), 4u);
    for (double V : P) {
      EXPECT_GE(V, 0.0);
      EXPECT_LE(V, 1.0);
    }
  }
}

TEST_P(PerExpertProperty, TrueLabelPValueNotDegenerate) {
  // The true label's p-value must not collapse to ~0 for in-distribution
  // samples under any scorer (the failure mode of the literal Eq. 1).
  SharedFixture &S = fixture();
  PromClassifier Prom(S.Model);
  Prom.calibrate(S.Calib);
  size_t Expert = static_cast<size_t>(GetParam());
  double Sum = 0.0;
  for (int I = 0; I < 100; ++I) {
    const data::Sample &Smp = S.Test[static_cast<size_t>(I)];
    Sum += Prom.pValues(Smp, Expert)[static_cast<size_t>(Smp.Label)];
  }
  EXPECT_GT(Sum / 100.0, 0.2);
}

namespace {
std::string expertName(const ::testing::TestParamInfo<int> &Info) {
  static const char *const Names[] = {"LAC", "TopK", "APS", "RAPS"};
  return Names[Info.param];
}
} // namespace

INSTANTIATE_TEST_SUITE_P(Experts, PerExpertProperty,
                         ::testing::Values(0, 1, 2, 3), expertName);

//===----------------------------------------------------------------------===//
// Committee monotonicity: the flag count is monotone in the vote
// threshold, and every committee decision is consistent with its experts.
//===----------------------------------------------------------------------===//

TEST(CommitteeProperty, FlagsMonotoneInVoteThreshold) {
  SharedFixture &S = fixture();
  size_t Prev = static_cast<size_t>(-1);
  for (size_t Votes = 1; Votes <= 4; ++Votes) {
    PromConfig Cfg;
    Cfg.MinVotesToFlag = Votes;
    Cfg.CredThreshold = 0.3; // Loose enough to produce flags.
    Cfg.ConfThreshold = 1.01;
    PromClassifier Prom(S.Model, Cfg);
    Prom.calibrate(S.Calib);
    size_t Flags = 0;
    for (const data::Sample &Smp : S.Test.samples())
      Flags += Prom.assess(Smp).Drifted ? 1 : 0;
    if (Prev != static_cast<size_t>(-1))
      EXPECT_LE(Flags, Prev) << "votes=" << Votes;
    Prev = Flags;
  }
}

TEST(CommitteeProperty, VerdictMatchesExpertVotes) {
  SharedFixture &S = fixture();
  PromConfig Cfg;
  Cfg.MinVotesToFlag = 2;
  PromClassifier Prom(S.Model, Cfg);
  Prom.calibrate(S.Calib);
  for (int I = 0; I < 80; ++I) {
    Verdict V = Prom.assess(S.Test[static_cast<size_t>(I)]);
    size_t Votes = 0;
    for (const ExpertOpinion &E : V.Experts)
      Votes += E.FlagDrift ? 1 : 0;
    EXPECT_EQ(Votes, V.VotesToFlag);
    EXPECT_EQ(V.Drifted, Votes >= 2);
  }
}

TEST(CommitteeProperty, CredThresholdMonotone) {
  // Raising the credibility threshold can only add flags.
  SharedFixture &S = fixture();
  size_t Prev = 0;
  for (double Cred : {0.05, 0.2, 0.5, 0.9}) {
    PromConfig Cfg;
    Cfg.CredThreshold = Cred;
    Cfg.ConfThreshold = 1.01;
    Cfg.MinVotesToFlag = 1;
    PromClassifier Prom(S.Model, Cfg);
    Prom.calibrate(S.Calib);
    size_t Flags = 0;
    for (const data::Sample &Smp : S.Test.samples())
      Flags += Prom.assess(Smp).Drifted ? 1 : 0;
    EXPECT_GE(Flags, Prev) << "cred=" << Cred;
    Prev = Flags;
  }
}

//===----------------------------------------------------------------------===//
// Temperature scaling.
//===----------------------------------------------------------------------===//

TEST(TemperatureProperty, FittedTemperatureIsPositive) {
  SharedFixture &S = fixture();
  PromClassifier Prom(S.Model);
  Prom.calibrate(S.Calib);
  EXPECT_GT(Prom.temperature(), 0.0);
}

TEST(TemperatureProperty, ArgmaxInvariant) {
  SharedFixture &S = fixture();
  PromClassifier Prom(S.Model);
  Prom.calibrate(S.Calib);
  for (int I = 0; I < 100; ++I) {
    const data::Sample &Smp = S.Test[static_cast<size_t>(I)];
    EXPECT_EQ(Prom.assess(Smp).Predicted, S.Model.predict(Smp));
  }
}

//===----------------------------------------------------------------------===//
// C ABI (core/CApi.h): the Sec. 8 non-C++ integration surface.
//===----------------------------------------------------------------------===//

namespace {

/// Drives the C API with the fixture's model outputs.
prom_detector *makeCDetector(SharedFixture &S) {
  prom_detector *D = prom_create(/*num_classes=*/4, /*feature_dim=*/2,
                                 /*epsilon=*/0.1);
  if (!D)
    return nullptr;
  for (const data::Sample &Smp : S.Calib.samples()) {
    std::vector<double> P = S.Model.predictProba(Smp);
    if (prom_add_calibration(D, P.data(), Smp.Features.data(),
                             Smp.Label) != 0) {
      prom_destroy(D);
      return nullptr;
    }
  }
  if (prom_finalize(D) != 0) {
    prom_destroy(D);
    return nullptr;
  }
  return D;
}

} // namespace

TEST(CApiTest, CreateRejectsInvalidArguments) {
  EXPECT_EQ(prom_create(1, 2, 0.1), nullptr);  // < 2 classes.
  EXPECT_EQ(prom_create(3, 0, 0.1), nullptr);  // No features.
  // A non-zero out-of-range epsilon is an error, not a silent fallback
  // to the default (a -5.0 here used to produce a detector running at
  // epsilon 0.1 while the host believed its own setting was live).
  EXPECT_EQ(prom_create(3, 2, -5.0), nullptr);
  EXPECT_EQ(prom_create(3, 2, 1.0), nullptr);
  EXPECT_EQ(prom_create(3, 2, 17.0), nullptr);
  prom_detector *D = prom_create(3, 2, 0.0); // 0 = "use the default".
  ASSERT_NE(D, nullptr);
  prom_destroy(D);
}

TEST(CApiTest, DoubleFinalizeIsNoop) {
  // Repeat prom_finalize() calls are a defined no-op success: the
  // calibrated state stays live and verdicts are unchanged bit for bit
  // (a second finalize used to rescore the already-finalized store).
  SharedFixture &S = fixture();
  prom_detector *D = makeCDetector(S);
  ASSERT_NE(D, nullptr);

  const data::Sample &Smp = S.Test[0];
  std::vector<double> P = S.Model.predictProba(Smp);
  double CredBefore = -1.0, ConfBefore = -1.0;
  int Before = prom_should_reject(D, P.data(), Smp.Features.data(),
                                  &CredBefore, &ConfBefore);
  ASSERT_GE(Before, 0);

  EXPECT_EQ(prom_finalize(D), 0); // Second finalize: no-op success.
  EXPECT_EQ(prom_finalize(D), 0); // And a third.

  double CredAfter = -1.0, ConfAfter = -1.0;
  int After = prom_should_reject(D, P.data(), Smp.Features.data(),
                                 &CredAfter, &ConfAfter);
  EXPECT_EQ(Before, After);
  EXPECT_EQ(CredBefore, CredAfter); // Bit-equal.
  EXPECT_EQ(ConfBefore, ConfAfter);
  prom_destroy(D);
}

TEST(CApiTest, LifecycleOrderingEnforced) {
  prom_detector *D = prom_create(3, 2, 0.1);
  ASSERT_NE(D, nullptr);
  double Probs[3] = {0.8, 0.1, 0.1};
  double Feats[2] = {0.0, 0.0};
  // Query before finalize fails.
  EXPECT_EQ(prom_should_reject(D, Probs, Feats, nullptr, nullptr), -1);
  // Finalize with too few samples fails.
  EXPECT_EQ(prom_finalize(D), -1);
  // Bad label fails.
  EXPECT_EQ(prom_add_calibration(D, Probs, Feats, 7), -1);
  prom_destroy(D);
  prom_destroy(nullptr); // NULL-safe.
}

TEST(CApiTest, AcceptsInDistributionInputs) {
  SharedFixture &S = fixture();
  prom_detector *D = makeCDetector(S);
  ASSERT_NE(D, nullptr);

  size_t Rejected = 0;
  const size_t N = 120;
  for (size_t I = 0; I < N; ++I) {
    const data::Sample &Smp = S.Test[I];
    std::vector<double> P = S.Model.predictProba(Smp);
    double Cred = -1.0, Conf = -1.0;
    int Verdict = prom_should_reject(D, P.data(), Smp.Features.data(),
                                     &Cred, &Conf);
    ASSERT_GE(Verdict, 0);
    EXPECT_GE(Cred, 0.0);
    EXPECT_LE(Cred, 1.0);
    EXPECT_GE(Conf, 0.0);
    EXPECT_LE(Conf, 1.0);
    Rejected += Verdict;
  }
  EXPECT_LT(Rejected, N / 3);
  prom_destroy(D);
}

TEST(CApiTest, PredictedLabelIsArgmax) {
  prom_detector *D = prom_create(3, 2, 0.1);
  ASSERT_NE(D, nullptr);
  double Probs[3] = {0.1, 0.7, 0.2};
  EXPECT_EQ(prom_predicted_label(D, Probs), 1);
  prom_destroy(D);
}

TEST(CApiTest, VerdictsBitIdenticalToPromClassifier) {
  // The C ABI rides the full C++ detector stack over the host-output
  // adapter, so a C verdict must be bit-equal — decision, credibility,
  // confidence — to a PromClassifier built over the same packed model
  // outputs. This is the round-trip contract that makes the C boundary
  // a transport, not a reimplementation.
  SharedFixture &S = fixture();
  prom_detector *D = makeCDetector(S);
  ASSERT_NE(D, nullptr);

  ml::HostOutputClassifier Host(/*NumClasses=*/4, /*FeatureDim=*/2);
  PromConfig Cfg;
  Cfg.Epsilon = 0.1; // makeCDetector's epsilon.
  PromClassifier Ref(Host, Cfg);
  data::Dataset Packed;
  for (const data::Sample &Smp : S.Calib.samples()) {
    std::vector<double> P = S.Model.predictProba(Smp);
    Packed.add(ml::HostOutputClassifier::pack(P.data(), Smp.Features.data(),
                                              4, 2, Smp.Label));
  }
  Ref.calibrate(Packed);

  const size_t N = std::min<size_t>(64, S.Test.size());
  std::vector<double> Probs, Feats;
  for (size_t I = 0; I < N; ++I) {
    const data::Sample &Smp = S.Test[I];
    std::vector<double> P = S.Model.predictProba(Smp);
    Probs.insert(Probs.end(), P.begin(), P.end());
    Feats.insert(Feats.end(), Smp.Features.begin(), Smp.Features.end());

    double Cred = -1.0, Conf = -1.0;
    int Flag = prom_should_reject(D, P.data(), Smp.Features.data(), &Cred,
                                  &Conf);
    ASSERT_GE(Flag, 0);
    Verdict V = Ref.assess(ml::HostOutputClassifier::pack(
        P.data(), Smp.Features.data(), 4, 2));
    EXPECT_EQ(Flag == 1, V.Drifted) << "sample " << I;
    EXPECT_EQ(Cred, V.meanCredibility()) << "sample " << I; // Bit-equal.
    EXPECT_EQ(Conf, V.meanConfidence()) << "sample " << I;
  }

  // The batched C entry point is element-wise bit-identical too.
  std::vector<int> Reject(N, -1);
  std::vector<double> Cred(N, -1.0), Conf(N, -1.0);
  ASSERT_EQ(prom_assess_batch(D, N, Probs.data(), Feats.data(),
                              Reject.data(), Cred.data(), Conf.data()),
            0);
  for (size_t I = 0; I < N; ++I) {
    const data::Sample &Smp = S.Test[I];
    std::vector<double> P = S.Model.predictProba(Smp);
    double C1 = -1.0, C2 = -1.0;
    int Flag = prom_should_reject(D, P.data(), Smp.Features.data(), &C1,
                                  &C2);
    EXPECT_EQ(Reject[I], Flag) << "sample " << I;
    EXPECT_EQ(Cred[I], C1) << "sample " << I;
    EXPECT_EQ(Conf[I], C2) << "sample " << I;
  }
  prom_destroy(D);
}

TEST(CApiTest, MatchesCppCommitteeOnDecisions) {
  // The C path and PromClassifier (modulo temperature scaling, which the
  // host-side C API leaves to the host) must agree on clear-cut inputs.
  SharedFixture &S = fixture();
  prom_detector *D = makeCDetector(S);
  ASSERT_NE(D, nullptr);

  // A wildly out-of-distribution probe with an uncertain prediction.
  double Probs[4] = {0.3, 0.28, 0.22, 0.2};
  double Feats[2] = {40.0, 40.0};
  double Cred = -1.0;
  int Verdict = prom_should_reject(D, Probs, Feats, &Cred, nullptr);
  EXPECT_EQ(Verdict, 1);
  EXPECT_LT(Cred, 0.5); // Committee mean; APS-family experts sit higher.
  prom_destroy(D);
}
