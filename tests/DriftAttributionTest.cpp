//===- tests/DriftAttributionTest.cpp - drift attribution layer ---------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The statistical test harness of the drift stack. The detectors are
// checked against straightforward reference implementations on seeded
// synthetic streams (Welford vs a naive two-pass pass, Page-Hinkley and
// CUSUM vs textbook recursions), with pinned detection-delay and
// false-alarm bounds on the shared drift-stream generator; the top-k
// attribution report must name the truly perturbed dimensions with ties
// broken deterministically; the WindowedDriftMonitor is property-tested
// against a naive ring-buffer reference under randomized operation
// interleavings (replayable via PROM_DRIFT_PROP_SEED); and attribution
// must be strictly observe-only — served verdicts bit-identical with the
// sink attached or not.
//
//===----------------------------------------------------------------------===//

#include "data/Split.h"
#include "ml/Linear.h"
#include "serve/AssessmentService.h"
#include "serve/DriftAttribution.h"
#include "serve/RecalibrationController.h"
#include "serve/WindowedDriftMonitor.h"
#include "tests/StreamTestHelpers.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <future>

using namespace prom;
using namespace prom::serve;
using prom::testing::bits;
using prom::testing::DriftObservation;
using prom::testing::DriftShape;
using prom::testing::DriftStreamGenerator;
using prom::testing::DriftStreamSpec;
using prom::testing::envSeedOr;
using prom::testing::expectSameVerdict;
using prom::testing::gaussianBlobs;

namespace {

/// The attribution config shared by the synthetic-stream tests: windows
/// sized so drift starting at observation 1024 lands 512 observations
/// into the tracking phase.
DriftAttributionConfig streamAttrConfig() {
  DriftAttributionConfig C;
  C.ReferenceWindow = 512;
  C.CurrentWindow = 64;
  C.MinCurrent = 32;
  C.TopK = 8;
  C.ZThreshold = 3.0;
  return C;
}

/// The drift-stream spec shared by the detection tests (three of sixteen
/// dimensions drift by four reference sigmas).
DriftStreamSpec streamSpec(DriftShape Shape) {
  DriftStreamSpec S;
  S.Dims = 16;
  S.PerturbedDims = {2, 7, 13};
  S.Shape = Shape;
  S.DriftStart = 1024;
  S.Magnitude = 4.0;
  S.RampLength = 512;
  S.Period = 256;
  S.Seed = 20250401;
  return S;
}

Verdict fakeVerdict(bool Drifted) {
  Verdict V;
  V.Predicted = 0;
  V.Drifted = Drifted;
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Welford vs naive two-pass reference
//===----------------------------------------------------------------------===//

TEST(DriftAttributionTest, WelfordMatchesTwoPassReference) {
  support::Rng R(11);
  std::vector<double> Xs;
  WelfordAccumulator W;
  for (int I = 0; I < 10000; ++I) {
    // A deliberately badly conditioned stream: large offset, small spread
    // — where the naive sum-of-squares formula loses digits and Welford
    // must not.
    double X = 1e6 + R.gaussian(0.0, 0.5) + (I % 7 == 0 ? 3.0 : 0.0);
    Xs.push_back(X);
    W.add(X);
  }
  ASSERT_EQ(W.Count, Xs.size());

  // Two-pass reference: exact mean first, then centered squares.
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  double Mean = Sum / static_cast<double>(Xs.size());
  double Sq = 0.0;
  for (double X : Xs)
    Sq += (X - Mean) * (X - Mean);
  double Var = Sq / static_cast<double>(Xs.size() - 1);

  EXPECT_NEAR(W.Mean, Mean, std::fabs(Mean) * 1e-12);
  EXPECT_NEAR(W.variance(), Var, Var * 1e-9);
}

TEST(DriftAttributionTest, WelfordMergeMatchesSequentialFold) {
  support::Rng R(12);
  WelfordAccumulator Whole, Left, Right;
  for (int I = 0; I < 5000; ++I) {
    double X = R.gaussian(3.0, 2.0);
    Whole.add(X);
    (I < 1237 ? Left : Right).add(X); // Uneven split on purpose.
  }
  Left.merge(Right);
  EXPECT_EQ(Left.Count, Whole.Count);
  EXPECT_NEAR(Left.Mean, Whole.Mean, std::fabs(Whole.Mean) * 1e-12);
  EXPECT_NEAR(Left.variance(), Whole.variance(), Whole.variance() * 1e-10);

  // Merging into an empty accumulator is a copy; merging an empty one is
  // a no-op.
  WelfordAccumulator Empty;
  Empty.merge(Whole);
  EXPECT_EQ(bits(Empty.Mean), bits(Whole.Mean));
  EXPECT_EQ(bits(Empty.M2), bits(Whole.M2));
  Whole.merge(WelfordAccumulator());
  EXPECT_EQ(bits(Empty.Mean), bits(Whole.Mean));
}

//===----------------------------------------------------------------------===//
// Page-Hinkley vs a textbook reference
//===----------------------------------------------------------------------===//

namespace {

/// Straightforward Page-Hinkley: running mean via an explicit sum, the
/// two-sided cumulative deviations per the textbook recursion.
struct ReferencePH {
  double Sum = 0.0;
  uint64_t N = 0;
  double CumUp = 0.0, MinUp = 0.0, CumDown = 0.0, MaxDown = 0.0;
  bool Alarm = false;
  uint64_t AlarmAt = 0;

  void step(double X, const PageHinkleyConfig &C) {
    Sum += X;
    ++N;
    double Mean = Sum / static_cast<double>(N);
    CumUp += X - Mean - C.Delta;
    MinUp = std::min(MinUp, CumUp);
    CumDown += X - Mean + C.Delta;
    MaxDown = std::max(MaxDown, CumDown);
    if (!Alarm && N >= C.MinSamples &&
        (CumUp - MinUp > C.Lambda || MaxDown - CumDown > C.Lambda)) {
      Alarm = true;
      AlarmAt = N;
    }
  }
  double score() const {
    return std::max(CumUp - MinUp, MaxDown - CumDown);
  }
};

} // namespace

TEST(DriftAttributionTest, PageHinkleyMatchesReferenceOnSeededStreams) {
  PageHinkleyConfig Cfg; // Library defaults (z-scaled streams).
  // No-drift stream: neither implementation may alarm.
  {
    support::Rng R(21);
    PageHinkleyState S;
    ReferencePH Ref;
    for (int I = 0; I < 4000; ++I) {
      double X = R.gaussian(0.0, 1.0);
      S.update(X, Cfg);
      Ref.step(X, Cfg);
      ASSERT_EQ(S.Alarm, Ref.Alarm) << "step " << I;
      ASSERT_NEAR(S.score(), Ref.score(), 1e-6) << "step " << I;
    }
    EXPECT_FALSE(S.Alarm);
  }
  // Step stream: both alarm, at the same step, shortly after the shift.
  {
    support::Rng R(22);
    PageHinkleyState S;
    ReferencePH Ref;
    for (int I = 0; I < 2000; ++I) {
      double X = R.gaussian(I < 1000 ? 0.0 : 4.0, 1.0);
      S.update(X, Cfg);
      Ref.step(X, Cfg);
      ASSERT_EQ(S.Alarm, Ref.Alarm) << "step " << I;
    }
    EXPECT_TRUE(S.Alarm);
    EXPECT_EQ(S.AlarmAt, Ref.AlarmAt);
    EXPECT_GT(S.AlarmAt, 1000u);
    EXPECT_LE(S.AlarmAt, 1000u + 64u); // Pinned detection delay.
  }
  // Downward step: the two-sided detector catches drops too.
  {
    support::Rng R(23);
    PageHinkleyState S;
    ReferencePH Ref;
    for (int I = 0; I < 2000; ++I) {
      double X = R.gaussian(I < 1000 ? 0.0 : -4.0, 1.0);
      S.update(X, Cfg);
      Ref.step(X, Cfg);
    }
    EXPECT_TRUE(S.Alarm);
    EXPECT_EQ(S.AlarmAt, Ref.AlarmAt);
    EXPECT_LE(S.AlarmAt, 1000u + 64u);
  }
}

//===----------------------------------------------------------------------===//
// CUSUM vs a textbook reference
//===----------------------------------------------------------------------===//

namespace {

/// Straightforward tabular CUSUM recursion against a fixed target.
struct ReferenceCusum {
  double Target = 0.0, Pos = 0.0, Neg = 0.0;
  uint64_t N = 0;
  bool Alarm = false;
  uint64_t AlarmAt = 0;

  void step(double X, const CUSUMConfig &C) {
    ++N;
    Pos = std::max(0.0, Pos + X - Target - C.Allowance);
    Neg = std::max(0.0, Neg + Target - X - C.Allowance);
    if (!Alarm && N >= C.MinSamples &&
        (Pos > C.Threshold || Neg > C.Threshold)) {
      Alarm = true;
      AlarmAt = N;
    }
  }
};

} // namespace

TEST(DriftAttributionTest, CusumMatchesReferenceOnSeededStreams) {
  CUSUMConfig Cfg; // Library defaults (z-scaled streams).
  // No drift: zero false alarms at the default threshold.
  {
    support::Rng R(31);
    CUSUMState S;
    S.reset(0.0);
    ReferenceCusum Ref;
    for (int I = 0; I < 6000; ++I) {
      double X = R.gaussian(0.0, 1.0);
      S.update(X, Cfg);
      Ref.step(X, Cfg);
      ASSERT_EQ(S.Alarm, Ref.Alarm) << "step " << I;
      ASSERT_NEAR(S.score(), std::max(Ref.Pos, Ref.Neg), 1e-9)
          << "step " << I;
    }
    EXPECT_FALSE(S.Alarm);
  }
  // Step up and step down: detection within a pinned delay, same step as
  // the reference.
  for (double Shift : {4.0, -4.0}) {
    support::Rng R(32);
    CUSUMState S;
    S.reset(0.0);
    ReferenceCusum Ref;
    for (int I = 0; I < 1200; ++I) {
      double X = R.gaussian(I < 1000 ? 0.0 : Shift, 1.0);
      S.update(X, Cfg);
      Ref.step(X, Cfg);
    }
    EXPECT_TRUE(S.Alarm) << "shift " << Shift;
    EXPECT_EQ(S.AlarmAt, Ref.AlarmAt);
    EXPECT_GT(S.AlarmAt, 1000u);
    EXPECT_LE(S.AlarmAt, 1000u + 16u); // Pinned detection delay.
  }
}

//===----------------------------------------------------------------------===//
// The attribution layer on the shared synthetic streams
//===----------------------------------------------------------------------===//

TEST(DriftAttributionTest, NoDriftStreamRaisesNoAlarms) {
  DriftStreamGenerator Gen(streamSpec(DriftShape::None));
  DriftAttribution Attr(streamAttrConfig());
  for (int I = 0; I < 2048; ++I) {
    DriftObservation Obs = Gen.next();
    Attr.observe(Obs.Features, Obs.Rejected);
  }
  ASSERT_TRUE(Attr.referenceReady());
  DriftAttributionReport R = Attr.report();
  EXPECT_EQ(R.Dims, 16u);
  EXPECT_EQ(R.DriftedDims, 0u);
  EXPECT_EQ(R.PageHinkleyDims, 0u);
  EXPECT_EQ(R.CusumDims, 0u);
  EXPECT_FALSE(R.RejectPageHinkley);
  EXPECT_FALSE(R.RejectCusum);
  EXPECT_EQ(R.Excursions, 0u);
  EXPECT_EQ(R.Type, DriftType::None);
  EXPECT_LT(R.MaxAbsZ, 1.0);
}

TEST(DriftAttributionTest, SuddenStepDetectedWithinPinnedDelayAndAttributed) {
  DriftStreamSpec Spec = streamSpec(DriftShape::Sudden);
  DriftStreamGenerator Gen(Spec);
  DriftAttribution Attr(streamAttrConfig());

  size_t FirstCusum = 0, FirstPH = 0, FirstAttr = 0, FirstRejCusum = 0;
  for (size_t I = 0; I < 2048; ++I) {
    DriftObservation Obs = Gen.next();
    Attr.observe(Obs.Features, Obs.Rejected);
    DriftAttributionReport R = Attr.report();
    if (FirstCusum == 0 && R.CusumDims >= 3)
      FirstCusum = I;
    if (FirstPH == 0 && R.PageHinkleyDims >= 3)
      FirstPH = I;
    if (FirstAttr == 0 && R.DriftedDims >= 3)
      FirstAttr = I;
    if (FirstRejCusum == 0 && R.RejectCusum)
      FirstRejCusum = I;
  }

  // Pinned detection delays past the drift onset at observation 1024.
  ASSERT_NE(FirstCusum, 0u);
  EXPECT_GE(FirstCusum, Spec.DriftStart);
  EXPECT_LE(FirstCusum, Spec.DriftStart + 16);
  ASSERT_NE(FirstPH, 0u);
  EXPECT_GE(FirstPH, Spec.DriftStart);
  EXPECT_LE(FirstPH, Spec.DriftStart + 64);
  ASSERT_NE(FirstAttr, 0u);
  EXPECT_GE(FirstAttr, Spec.DriftStart);
  EXPECT_LE(FirstAttr, Spec.DriftStart + 192);
  ASSERT_NE(FirstRejCusum, 0u);
  EXPECT_GE(FirstRejCusum, Spec.DriftStart);
  EXPECT_LE(FirstRejCusum, Spec.DriftStart + 96);

  // The final report names exactly the truly perturbed dimensions, in
  // the top slots, and classifies the shape as sudden.
  DriftAttributionReport R = Attr.report();
  EXPECT_EQ(R.DriftedDims, 3u);
  ASSERT_GE(R.Top.size(), 3u);
  std::vector<size_t> Top3 = {R.Top[0].Dim, R.Top[1].Dim, R.Top[2].Dim};
  std::sort(Top3.begin(), Top3.end());
  EXPECT_EQ(Top3, Spec.PerturbedDims);
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_GT(std::fabs(R.Top[I].ZScore), 3.0);
    EXPECT_TRUE(R.Top[I].Cusum);
  }
  EXPECT_EQ(R.Type, DriftType::Sudden);
  EXPECT_EQ(R.Excursions, 1u);
  EXPECT_TRUE(R.RejectPageHinkley); // ~0.05 -> ~0.35 rejection step.
}

TEST(DriftAttributionTest, GradualRampClassifiedGradualAndDetected) {
  DriftStreamSpec Spec = streamSpec(DriftShape::Gradual);
  DriftStreamGenerator Gen(Spec);
  DriftAttribution Attr(streamAttrConfig());
  for (size_t I = 0; I < 2560; ++I) {
    DriftObservation Obs = Gen.next();
    Attr.observe(Obs.Features, Obs.Rejected);
  }
  DriftAttributionReport R = Attr.report();
  EXPECT_EQ(R.Type, DriftType::Gradual);
  EXPECT_EQ(R.Excursions, 1u);
  EXPECT_EQ(R.DriftedDims, 3u);
  EXPECT_GE(R.CusumDims, 3u);
  std::vector<size_t> Top3 = {R.Top[0].Dim, R.Top[1].Dim, R.Top[2].Dim};
  std::sort(Top3.begin(), Top3.end());
  EXPECT_EQ(Top3, Spec.PerturbedDims);
}

TEST(DriftAttributionTest, RecurringDriftClassifiedRecurring) {
  DriftStreamSpec Spec = streamSpec(DriftShape::Recurring);
  DriftStreamGenerator Gen(Spec);
  DriftAttribution Attr(streamAttrConfig());
  // Two full on/off cycles after the onset at 1024 (period 256).
  for (size_t I = 0; I < 2176; ++I) {
    DriftObservation Obs = Gen.next();
    Attr.observe(Obs.Features, Obs.Rejected);
  }
  DriftAttributionReport R = Attr.report();
  EXPECT_GE(R.Excursions, 2u);
  EXPECT_EQ(R.Type, DriftType::Recurring);
}

TEST(DriftAttributionTest, TopKTiesBreakByDimensionIndex) {
  DriftAttributionConfig Cfg;
  Cfg.ReferenceWindow = 8;
  Cfg.CurrentWindow = 8;
  Cfg.MinCurrent = 1;
  Cfg.TopK = 4;
  DriftAttribution Attr(Cfg);

  // Constant reference, then dimensions {1, 3, 5} shift by exactly the
  // same amount: their z-scores are bit-identical, so the ranking must
  // fall back to ascending dimension index — deterministically.
  std::vector<double> Base(6, 0.0);
  for (int I = 0; I < 8; ++I)
    Attr.observe(Base, false);
  ASSERT_TRUE(Attr.referenceReady());
  std::vector<double> Shifted = Base;
  Shifted[1] = Shifted[3] = Shifted[5] = 1.0;
  for (int I = 0; I < 4; ++I)
    Attr.observe(Shifted, false);

  DriftAttributionReport R = Attr.report();
  ASSERT_EQ(R.Top.size(), 4u);
  EXPECT_EQ(bits(std::fabs(R.Top[0].ZScore)),
            bits(std::fabs(R.Top[1].ZScore))); // Genuine tie.
  EXPECT_EQ(R.Top[0].Dim, 1u);
  EXPECT_EQ(R.Top[1].Dim, 3u);
  EXPECT_EQ(R.Top[2].Dim, 5u);
  EXPECT_EQ(R.Top[3].Dim, 0u); // z == 0 ties also break by index.
}

TEST(DriftAttributionTest, RearmRebuildsReferenceAgainstTheNewNormal) {
  DriftStreamSpec Spec = streamSpec(DriftShape::Sudden);
  DriftStreamGenerator Gen(Spec);
  DriftAttribution Attr(streamAttrConfig());
  for (size_t I = 0; I < 2048; ++I) {
    DriftObservation Obs = Gen.next();
    Attr.observe(Obs.Features, Obs.Rejected);
  }
  ASSERT_GT(Attr.report().DriftedDims, 0u);

  // Rearm: the drifted distribution becomes the new normal. Feeding the
  // same (still shifted) stream must rebuild a clean reference with no
  // alarms — and lifetime counters survive.
  uint64_t SeenBefore = Attr.totalObserved();
  Attr.rearm();
  EXPECT_FALSE(Attr.referenceReady());
  EXPECT_EQ(Attr.rearms(), 1u);
  for (size_t I = 0; I < 1024; ++I) {
    DriftObservation Obs = Gen.next();
    Attr.observe(Obs.Features, Obs.Rejected);
  }
  EXPECT_EQ(Attr.totalObserved(), SeenBefore + 1024);
  ASSERT_TRUE(Attr.referenceReady());
  DriftAttributionReport R = Attr.report();
  EXPECT_EQ(R.DriftedDims, 0u);
  EXPECT_EQ(R.CusumDims, 0u);
  EXPECT_EQ(R.Type, DriftType::None);
}

TEST(DriftAttributionTest, RejectionOnlyStreamDrivesRejectionDetectors) {
  DriftAttributionConfig Cfg = streamAttrConfig();
  Cfg.ReferenceWindow = 256;
  DriftAttribution Attr(Cfg);
  support::Rng R(41);
  // In-control rejection stream, then a step to heavy rejection — with
  // no feature vectors at all (regression verdicts, say).
  for (int I = 0; I < 1024; ++I)
    Attr.observeRejection(R.bernoulli(0.05));
  EXPECT_FALSE(Attr.report().RejectCusum);
  for (int I = 0; I < 512; ++I)
    Attr.observeRejection(R.bernoulli(0.5));
  DriftAttributionReport Rep = Attr.report();
  EXPECT_EQ(Rep.Dims, 0u);
  EXPECT_TRUE(Rep.RejectCusum);
  EXPECT_TRUE(Rep.RejectPageHinkley);
  EXPECT_NEAR(Rep.ReferenceRejectRate, 0.05, 0.05);
}

TEST(DriftAttributionTest, MismatchedWidthsFoldRejectionOnly) {
  DriftAttributionConfig Cfg;
  Cfg.ReferenceWindow = 4;
  DriftAttribution Attr(Cfg);
  std::vector<double> Narrow = {1.0, 2.0};
  std::vector<double> Wide = {1.0, 2.0, 3.0};
  Attr.observe(Narrow, false); // Fixes the tracked width at 2.
  Attr.observe(Wide, true);    // Width mismatch: rejection still folds.
  Attr.observe(Narrow, false);
  EXPECT_EQ(Attr.dimMismatches(), 1u);
  EXPECT_EQ(Attr.totalObserved(), 3u);
  EXPECT_EQ(Attr.report().Dims, 2u);
}

//===----------------------------------------------------------------------===//
// WindowedDriftMonitor vs a naive ring-buffer reference (property test)
//===----------------------------------------------------------------------===//

namespace {

/// Naive reference monitor: keeps the raw window, recomputes every
/// counter from scratch on each fold.
struct NaiveMonitor {
  DriftWindowConfig Cfg;
  std::deque<std::pair<bool, int>> Win; ///< (rejected, mispredicted).
  size_t Total = 0;
  bool Active = false;
  size_t Alerts = 0;
  DetectionCounts Lifetime;

  explicit NaiveMonitor(DriftWindowConfig C) : Cfg(C) {}

  void fold(bool Rej, int Mis) {
    Win.emplace_back(Rej, Mis);
    if (Win.size() > Cfg.WindowSize)
      Win.pop_front();
    ++Total;
    if (Mis >= 0)
      Lifetime.record(Mis != 0, Rej);
    double Rate = rate();
    bool Above = Win.size() >= Cfg.MinFill && Rate > Cfg.AlertRejectRate;
    if (Above && !Active)
      ++Alerts;
    Active = Above;
  }

  size_t rejected() const {
    size_t N = 0;
    for (const auto &E : Win)
      if (E.first)
        ++N;
    return N;
  }

  double rate() const {
    return Win.empty() ? 0.0
                       : static_cast<double>(rejected()) /
                             static_cast<double>(Win.size());
  }

  DetectionCounts window() const {
    DetectionCounts W;
    for (const auto &E : Win)
      if (E.second >= 0)
        W.record(E.second != 0, E.first);
    return W;
  }

  void reset() {
    Win.clear();
    Total = 0;
    Active = false;
    Alerts = 0;
    Lifetime = DetectionCounts();
  }
};

void expectSameCounts(const DetectionCounts &A, const DetectionCounts &B) {
  EXPECT_EQ(A.TruePositive, B.TruePositive);
  EXPECT_EQ(A.FalsePositive, B.FalsePositive);
  EXPECT_EQ(A.TrueNegative, B.TrueNegative);
  EXPECT_EQ(A.FalseNegative, B.FalseNegative);
}

/// One randomized run: random window config, then a random interleaving
/// of record / recordLabeled / feature-carrying record / reset, with the
/// full snapshot compared against the naive reference after every
/// operation. An attribution sink rides along the whole time to prove
/// the counters never depend on it.
void runMonitorProperty(uint64_t Seed) {
  SCOPED_TRACE("failure seed " + std::to_string(Seed) +
               " (replay: PROM_DRIFT_PROP_SEED=" + std::to_string(Seed) +
               " ctest -R DriftAttributionTest)");
  support::Rng R(Seed);
  DriftWindowConfig Cfg;
  Cfg.WindowSize = 1 + R.bounded(48);
  Cfg.MinFill = 1 + R.bounded(Cfg.WindowSize);
  Cfg.AlertRejectRate = R.uniform(0.05, 0.6);
  WindowedDriftMonitor M(Cfg);
  NaiveMonitor Ref(Cfg);

  DriftAttributionConfig ACfg;
  ACfg.ReferenceWindow = 16;
  ACfg.CurrentWindow = 8;
  ACfg.MinCurrent = 2;
  DriftAttribution Sink(ACfg);
  M.setAttributionSink(&Sink);

  double PReject = R.uniform(0.1, 0.9);
  for (int Op = 0; Op < 300; ++Op) {
    double U = R.uniform();
    bool Rej = R.bernoulli(PReject);
    if (U < 0.04) {
      M.reset();
      Ref.reset();
    } else if (U < 0.40) {
      M.record(fakeVerdict(Rej));
      Ref.fold(Rej, -1);
    } else if (U < 0.70) {
      bool Mis = R.bernoulli(0.5);
      M.recordLabeled(fakeVerdict(Rej), Mis);
      Ref.fold(Rej, Mis ? 1 : 0);
    } else {
      std::vector<double> F = {R.gaussian(), R.gaussian(), R.gaussian()};
      M.record(fakeVerdict(Rej), F.data(), F.size());
      Ref.fold(Rej, -1);
    }

    DriftWindowSnapshot S = M.snapshot();
    ASSERT_EQ(S.TotalSeen, Ref.Total) << "op " << Op;
    ASSERT_EQ(S.WindowFill, Ref.Win.size()) << "op " << Op;
    ASSERT_EQ(S.WindowRejected, Ref.rejected()) << "op " << Op;
    ASSERT_EQ(bits(S.RejectRate), bits(Ref.rate())) << "op " << Op;
    ASSERT_EQ(S.AlertActive, Ref.Active) << "op " << Op;
    ASSERT_EQ(S.AlertsRaised, Ref.Alerts) << "op " << Op;
    expectSameCounts(S.Window, Ref.window());
    expectSameCounts(S.Lifetime, Ref.Lifetime);
    EXPECT_TRUE(S.HasAttribution);
  }
}

} // namespace

TEST(DriftAttributionTest, MonitorMatchesNaiveReferenceUnderRandomOps) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed)
    runMonitorProperty(Seed);
}

TEST(DriftAttributionTest, MonitorPropertyReplaySeedFromEnv) {
  const char *V = std::getenv("PROM_DRIFT_PROP_SEED");
  if (V == nullptr || *V == '\0')
    GTEST_SKIP() << "set PROM_DRIFT_PROP_SEED=<seed> to replay a failure";
  runMonitorProperty(envSeedOr("PROM_DRIFT_PROP_SEED", 0));
}

//===----------------------------------------------------------------------===//
// Observe-only: served verdicts bit-identical with attribution on or off
//===----------------------------------------------------------------------===//

TEST(DriftAttributionTest, ServedVerdictsBitIdenticalWithAttributionOnOrOff) {
  support::Rng R(63);
  data::Dataset Full = gaussianBlobs(3, 200, 4.0, 0.8, R);
  auto Split = data::calibrationPartition(Full, R, 0.35);
  ml::LogisticRegression Model;
  Model.fit(Split.first, R);
  PromConfig Cfg;
  Cfg.NumShards = 4;
  PromClassifier Prom(Model, Cfg);
  Prom.calibrate(Split.second);

  // Half in-distribution, half shifted — so the stream actually drifts
  // and the monitor/sink have something to chew on.
  data::Dataset Test = gaussianBlobs(3, 25, 4.0, 0.8, R);
  data::Dataset Shifted = gaussianBlobs(3, 25, 4.0, 0.8, R, /*ShiftX=*/3.0);
  for (const data::Sample &S : Shifted.samples())
    Test.add(S);
  std::vector<Verdict> Direct = Prom.assessBatch(Test);

  struct RunResult {
    std::vector<Verdict> Verdicts;
    DriftWindowSnapshot Window;
  };
  auto serveOnce = [&](bool WithAttribution) {
    DriftAttributionConfig ACfg;
    ACfg.ReferenceWindow = 24;
    ACfg.CurrentWindow = 12;
    ACfg.MinCurrent = 4;
    DriftAttribution Attr(ACfg);

    DriftWindowConfig WCfg;
    WCfg.WindowSize = 32;
    WCfg.MinFill = 8;
    WCfg.AlertRejectRate = 0.2;
    WindowedDriftMonitor Monitor(WCfg);
    if (WithAttribution)
      Monitor.setAttributionSink(&Attr);

    ServiceConfig SCfg;
    SCfg.MaxBatch = 16;
    // One batcher: the monitor fold order is then the submission order,
    // so the window counters of the two runs are comparable exactly.
    SCfg.NumBatchers = 1;
    AssessmentService Svc(Prom, SCfg, &Monitor);
    std::vector<std::future<Verdict>> Futures;
    for (const data::Sample &S : Test.samples())
      Futures.push_back(Svc.submit(S));
    RunResult Out;
    for (auto &F : Futures)
      Out.Verdicts.push_back(F.get());
    Svc.shutdown();
    Out.Window = Monitor.snapshot();
    if (WithAttribution) {
      EXPECT_EQ(Attr.totalObserved(), Test.size());
      EXPECT_TRUE(Attr.referenceReady());
      EXPECT_TRUE(Out.Window.HasAttribution);
    } else {
      EXPECT_FALSE(Out.Window.HasAttribution);
    }
    return Out;
  };

  RunResult Off = serveOnce(false);
  RunResult On = serveOnce(true);
  ASSERT_EQ(Off.Verdicts.size(), Test.size());
  ASSERT_EQ(On.Verdicts.size(), Test.size());
  for (size_t I = 0; I < Test.size(); ++I) {
    expectSameVerdict(Direct[I], Off.Verdicts[I], I);
    expectSameVerdict(Direct[I], On.Verdicts[I], I);
  }
  // The window counters must not depend on the sink either.
  EXPECT_EQ(Off.Window.TotalSeen, On.Window.TotalSeen);
  EXPECT_EQ(Off.Window.WindowRejected, On.Window.WindowRejected);
  EXPECT_EQ(Off.Window.AlertsRaised, On.Window.AlertsRaised);
}

//===----------------------------------------------------------------------===//
// Attribution through snapshots, alerts, and the controller
//===----------------------------------------------------------------------===//

TEST(DriftAttributionTest, AlertSnapshotCarriesAttributionReport) {
  DriftWindowConfig WCfg;
  WCfg.WindowSize = 16;
  WCfg.MinFill = 8;
  WCfg.AlertRejectRate = 0.5;
  WindowedDriftMonitor Monitor(WCfg);

  DriftAttributionConfig ACfg;
  ACfg.ReferenceWindow = 8;
  ACfg.CurrentWindow = 4;
  ACfg.MinCurrent = 2;
  DriftAttribution Attr(ACfg);
  Monitor.setAttributionSink(&Attr);

  size_t AlertsSeen = 0;
  DriftWindowSnapshot AtAlert;
  Monitor.setAlertCallback([&](const DriftWindowSnapshot &S) {
    ++AlertsSeen;
    AtAlert = S;
  });

  support::Rng R(51);
  std::vector<double> F(3);
  // Clean reference, then a rejecting shifted burst that trips the alert.
  for (int I = 0; I < 10; ++I) {
    for (double &X : F)
      X = R.gaussian(0.0, 1.0);
    Monitor.record(fakeVerdict(false), F.data(), F.size());
  }
  for (int I = 0; I < 10; ++I) {
    for (double &X : F)
      X = R.gaussian(6.0, 1.0);
    Monitor.record(fakeVerdict(true), F.data(), F.size());
  }

  ASSERT_EQ(AlertsSeen, 1u);
  EXPECT_TRUE(AtAlert.AlertActive);
  ASSERT_TRUE(AtAlert.HasAttribution);
  // The crossing verdict is already in the attribution state (sink
  // observes before the fold).
  EXPECT_EQ(AtAlert.Attribution.ReferenceCount +
                AtAlert.Attribution.CurrentCount,
            AtAlert.TotalSeen);
  EXPECT_TRUE(Monitor.snapshot().HasAttribution);
  EXPECT_EQ(Monitor.attributionSink(), &Attr);
}

TEST(DriftAttributionTest, ControllerPrioritizesRelabelBufferByAttribution) {
  support::Rng R(73);
  data::Dataset Full = gaussianBlobs(3, 150, 4.0, 0.8, R);
  auto Split = data::calibrationPartition(Full, R, 0.4);
  ml::LogisticRegression Model;
  Model.fit(Split.first, R);
  PromClassifier Prom(Model);
  Prom.calibrate(Split.second);

  WindowedDriftMonitor Monitor;
  DriftAttributionConfig ACfg;
  ACfg.ReferenceWindow = 16;
  ACfg.CurrentWindow = 8;
  ACfg.MinCurrent = 4;
  ACfg.TopK = 2;
  DriftAttribution Attr(ACfg);

  RecalibrationConfig RCfg;
  RCfg.MinRefreshSamples = 8;
  RCfg.MaxSamplesPerRefresh = 8;
  RecalibrationController Controller(Prom, Monitor, RCfg);
  Controller.setAttribution(&Attr);

  // Teach the attribution layer that dimension 1 drifted: a clean
  // reference around the origin, then a strong shift on dim 1 only.
  std::vector<double> F(2);
  for (int I = 0; I < 16; ++I) {
    F[0] = R.gaussian(0.0, 1.0);
    F[1] = R.gaussian(0.0, 1.0);
    Attr.observe(F, false);
  }
  for (int I = 0; I < 8; ++I) {
    F[0] = R.gaussian(0.0, 1.0);
    F[1] = R.gaussian(8.0, 1.0);
    Attr.observe(F, true);
  }
  DriftAttributionReport Rep = Attr.report();
  ASSERT_TRUE(Rep.ReferenceReady);
  ASSERT_FALSE(Rep.Top.empty());
  ASSERT_EQ(Rep.Top[0].Dim, 1u);

  // Sixteen relabeled samples, interleaved: even ones live where the
  // drift is (far out on dim 1), odd ones near the reference. The
  // bounded refresh must fold the drift-relevant eight — not simply the
  // newest eight.
  for (int I = 0; I < 16; ++I) {
    data::Sample S = Split.second[static_cast<size_t>(I)];
    if (I % 2 == 0)
      S.Features[1] += 20.0;
    Controller.submitLabeled(std::move(S));
  }
  Controller.triggerRefresh();
  ASSERT_TRUE(Controller.waitForRefreshes(1, std::chrono::milliseconds(5000)));

  RecalibrationStats Stats = Controller.stats();
  EXPECT_EQ(Stats.SamplesFolded, 8u);
  EXPECT_EQ(Stats.RefreshesPrioritized, 1u);
  EXPECT_EQ(Stats.PendingSamples, 8u); // The near-reference tail requeued.
  ASSERT_FALSE(Stats.LastDriftedDims.empty());
  EXPECT_EQ(Stats.LastDriftedDims[0], 1u);
  EXPECT_GT(Stats.LastMaxAbsZ, 3.0);
  // ResetMonitorAfterRefresh re-arms the attribution layer too.
  EXPECT_EQ(Attr.rearms(), 1u);
  EXPECT_FALSE(Attr.referenceReady());
  Controller.shutdown();
}
