//===- tests/StorePropertyTest.cpp - randomized store lifecycle fuzzing -------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Randomized property test for the CalibrationStore lifecycle: a random
// interleaving of appendEntries()+refinalize(), appendEntries()+
// refinalizeFull(), reshard(), and eviction-bound changes must leave the
// store bit-identical — through the exact engine entry points the batched
// assessment uses — to a brand-new store finalized from scratch on the
// mirrored surviving entries. This is the generalization of RefreshTest's
// hand-picked scenarios: whatever sequence deployment throws at the store,
// the incremental indexes may never drift from the rebuild semantics.
//
// Every program is seeded and the failing seed is printed on mismatch;
// replay one seed with PROM_STORE_PROP_SEED=<seed> (runs in addition to
// the fixed sweep).
//
//===----------------------------------------------------------------------===//

#include "tests/StoreTestHelpers.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace prom;
using prom::testing::expectBothRegimesMatch;
using prom::testing::makeEntries;
using prom::testing::referenceStore;

namespace {

constexpr size_t Dim = 5;
constexpr int NumLabels = 3;
constexpr size_t NumExperts = 2;

/// Applies the refinalize() eviction contract to the mirror: oldest-first
/// down to \p MaxEntries (0 = unbounded).
void applyEviction(std::vector<CalibrationEntry> &Mirror, size_t MaxEntries) {
  if (MaxEntries > 0 && Mirror.size() > MaxEntries)
    Mirror.erase(Mirror.begin(),
                 Mirror.begin() +
                     static_cast<long>(Mirror.size() - MaxEntries));
}

/// One random store program: ~12 lifecycle operations with a from-scratch
/// comparison every third step and at the end.
void runRandomProgram(uint64_t Seed) {
  SCOPED_TRACE("failure seed " + std::to_string(Seed) +
               " (replay: PROM_STORE_PROP_SEED=" + std::to_string(Seed) +
               ")");
  support::Rng R(Seed);

  size_t K = 1 + R.bounded(8);
  std::vector<CalibrationEntry> Mirror =
      makeEntries(200 + R.bounded(400), Dim, NumLabels, NumExperts, R);
  CalibrationStore Live;
  Live.reserve(Mirror.size());
  for (const CalibrationEntry &E : Mirror)
    Live.add(E);
  Live.finalize(K);
  size_t MaxEntries = 0;

  const int NumOps = 12;
  for (int Op = 0; Op < NumOps; ++Op) {
    SCOPED_TRACE("op " + std::to_string(Op));
    switch (R.bounded(5)) {
    case 0:   // Incremental refresh, small batch.
    case 1: { // (Twice as likely: the workhorse operation.)
      std::vector<CalibrationEntry> Fresh =
          makeEntries(1 + R.bounded(300), Dim, NumLabels, NumExperts, R);
      Mirror.insert(Mirror.end(), Fresh.begin(), Fresh.end());
      Live.appendEntries(std::move(Fresh));
      Live.refinalize();
      applyEviction(Mirror, MaxEntries);
      break;
    }
    case 2: { // Full-rebuild refresh on the same staged-entry semantics.
      std::vector<CalibrationEntry> Fresh =
          makeEntries(1 + R.bounded(128), Dim, NumLabels, NumExperts, R);
      Mirror.insert(Mirror.end(), Fresh.begin(), Fresh.end());
      Live.appendEntries(std::move(Fresh));
      Live.refinalizeFull();
      applyEviction(Mirror, MaxEntries);
      break;
    }
    case 3: { // Re-partition; verdicts must not depend on the layout.
      K = 1 + R.bounded(8);
      Live.reshard(K);
      break;
    }
    case 4: { // Move the eviction bound (applies on the next refinalize).
      MaxEntries = R.bounded(3) == 0 ? 0 : 128 + R.bounded(512);
      Live.setMaxEntries(MaxEntries);
      break;
    }
    }

    if (Op % 3 == 2 || Op == NumOps - 1) {
      CalibrationStore Ref = referenceStore(Mirror, K);
      expectBothRegimesMatch(Live, Ref, Seed ^ static_cast<uint64_t>(Op),
                             ("after op " + std::to_string(Op)).c_str());
      if (::testing::Test::HasFailure()) {
        ADD_FAILURE() << "store property violated; failure seed " << Seed
                      << " — replay with PROM_STORE_PROP_SEED=" << Seed;
        return;
      }
    }
  }
}

/// Entries whose embeddings live on a tiny integer grid: exact duplicate
/// embeddings and exact distance ties abound — the adversarial input for
/// the pruned scan's tie-break safety.
std::vector<CalibrationEntry> makeTieHeavyEntries(size_t N, size_t Dim,
                                                  support::Rng &R) {
  std::vector<CalibrationEntry> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    CalibrationEntry E;
    for (size_t D = 0; D < Dim; ++D)
      E.Embed.push_back(static_cast<double>(R.bounded(3)));
    E.Label = static_cast<int>(I % static_cast<size_t>(NumLabels));
    for (size_t X = 0; X < NumExperts; ++X)
      E.Scores.push_back(R.uniform(0.0, 1.0));
    Out.push_back(std::move(E));
  }
  return Out;
}

/// Random store program with the cluster-pruned scan forced on: the live
/// store carries an aggressive index policy (every shard indexed, random
/// centroid counts and staleness bounds) through a random lifecycle, while
/// the reference store keeps the store-default policy (disabled, exact
/// flat scan). The two must agree bit for bit on every selection and
/// p-value — the losslessness property, randomized over dims, shard
/// counts, duplicate/tie-heavy embeddings, and mutation interleavings.
void runPrunedProgram(uint64_t Seed) {
  SCOPED_TRACE("failure seed " + std::to_string(Seed) +
               " (replay: PROM_STORE_PROP_SEED=" + std::to_string(Seed) +
               ")");
  support::Rng R(Seed);

  size_t K = 1 + R.bounded(6);
  size_t PDim = 3 + R.bounded(9);
  bool TieHeavy = R.bounded(2) == 0;
  auto Make = [&](size_t N) {
    return TieHeavy ? makeTieHeavyEntries(N, PDim, R)
                    : makeEntries(N, PDim, NumLabels, NumExperts, R);
  };

  std::vector<CalibrationEntry> Mirror = Make(300 + R.bounded(500));
  CalibrationStore Live;
  Live.reserve(Mirror.size());
  for (const CalibrationEntry &E : Mirror)
    Live.add(E);

  ClusterIndexPolicy Policy;
  Policy.Enabled = true;
  Policy.MinEntries = 1 + R.bounded(256);
  Policy.NumCentroids = R.bounded(2) == 0 ? 0 : 4 + R.bounded(28);
  Policy.MaxStaleFraction = 0.05 + 0.2 * R.uniform();
  // The default-config regime selects 50% — keep the pruned path routed
  // (the production MaxSelectFraction bound is a perf heuristic, not a
  // correctness one, and this test is about correctness).
  Policy.MaxSelectFraction = 1.0;
  Live.setIndexPolicy(Policy);
  Live.finalize(K);
  ASSERT_GT(Live.indexedShards(), 0u) << "policy did not index any shard";
  size_t MaxEntries = 0;

  const int NumOps = 10;
  for (int Op = 0; Op < NumOps; ++Op) {
    SCOPED_TRACE("op " + std::to_string(Op));
    switch (R.bounded(6)) {
    case 0:   // Incremental refresh: exercises stale-tail exact scans.
    case 1: {
      std::vector<CalibrationEntry> Fresh = Make(1 + R.bounded(300));
      Mirror.insert(Mirror.end(), Fresh.begin(), Fresh.end());
      Live.appendEntries(std::move(Fresh));
      Live.refinalize();
      applyEviction(Mirror, MaxEntries);
      break;
    }
    case 2: { // Full rebuild (indexes rebuilt wholesale).
      std::vector<CalibrationEntry> Fresh = Make(1 + R.bounded(128));
      Mirror.insert(Mirror.end(), Fresh.begin(), Fresh.end());
      Live.appendEntries(std::move(Fresh));
      Live.refinalizeFull();
      applyEviction(Mirror, MaxEntries);
      break;
    }
    case 3: { // Re-partition: every shard index must follow the layout.
      K = 1 + R.bounded(6);
      Live.reshard(K);
      break;
    }
    case 4: { // Eviction bound (kept >= 256 so selections stay proper).
      MaxEntries = R.bounded(3) == 0 ? 0 : 256 + R.bounded(512);
      Live.setMaxEntries(MaxEntries);
      break;
    }
    case 5: { // Policy change mid-flight: re-index under new knobs.
      Policy.MinEntries = 1 + R.bounded(256);
      Policy.MaxStaleFraction = 0.05 + 0.2 * R.uniform();
      Live.setIndexPolicy(Policy);
      break;
    }
    }

    if (Op % 3 == 2 || Op == NumOps - 1) {
      CalibrationStore Ref = referenceStore(Mirror, K);
      expectBothRegimesMatch(Live, Ref, Seed ^ static_cast<uint64_t>(Op),
                             ("after op " + std::to_string(Op)).c_str());
      if (::testing::Test::HasFailure()) {
        ADD_FAILURE() << "pruned-store property violated; failure seed "
                      << Seed << " — replay with PROM_STORE_PROP_SEED="
                      << Seed;
        return;
      }
    }
  }

  // The program must have ended with the pruned path actually serving
  // (guards against silently falling back to the exact scan forever).
  if (Live.indexedShards() > 0 &&
      selectionKeepCount(Live.size(), PromConfig()) < Live.size()) {
    AssessmentScratch S;
    PromConfig Cfg;
    std::vector<double> Query(Live.embedDim());
    for (double &V : Query)
      V = R.gaussian(0.0, 2.0);
    Live.selectForAssessment(Query.data(), Cfg, S);
    EXPECT_TRUE(S.Pruned.Used);
    EXPECT_EQ(S.Pruned.RowsTotal, Live.size());
    EXPECT_GT(S.Pruned.RowsScanned, 0u);
    EXPECT_LE(S.Pruned.RowsScanned, S.Pruned.RowsTotal);
    EXPECT_LE(S.Pruned.ListsScanned, S.Pruned.ListsTotal);
  }
}

/// Batch-prepared pruned scans must be a pure caching transformation: a
/// selection served from a prepared BatchPrunedScan block is bit-identical
/// — keys, partition, weights, and every pruning counter — to the same
/// query's stand-alone selectForAssessment, and the per-query stats slots
/// (plus their canonical aggregate) are deterministic at any thread count.
void runBatchPreparedProgram(uint64_t Seed) {
  SCOPED_TRACE("failure seed " + std::to_string(Seed));
  support::Rng R(Seed);

  size_t K = 1 + R.bounded(6);
  size_t PDim = 3 + R.bounded(9);
  bool TieHeavy = R.bounded(2) == 0;
  auto Make = [&](size_t N) {
    return TieHeavy ? makeTieHeavyEntries(N, PDim, R)
                    : makeEntries(N, PDim, NumLabels, NumExperts, R);
  };

  std::vector<CalibrationEntry> Mirror = Make(400 + R.bounded(400));
  CalibrationStore Live;
  Live.reserve(Mirror.size());
  for (const CalibrationEntry &E : Mirror)
    Live.add(E);
  ClusterIndexPolicy Policy;
  Policy.Enabled = true;
  Policy.MinEntries = 32;
  Policy.MaxSelectFraction = 1.0;
  Live.setIndexPolicy(Policy);
  Live.finalize(K);
  ASSERT_GT(Live.indexedShards(), 0u);
  // Stale tail: the prepared scan must coexist with the exact tail rows.
  Live.appendEntries(Make(1 + R.bounded(40)));
  Live.refinalize();

  PromConfig Cfg;
  const size_t NumQ = 1 + R.bounded(24);
  support::FeatureMatrix Queries(NumQ, Live.embedDim());
  for (size_t Q = 0; Q < NumQ; ++Q)
    for (size_t D = 0; D < Live.embedDim(); ++D)
      Queries.rowPtr(Q)[D] = TieHeavy ? static_cast<double>(R.bounded(3))
                                      : R.gaussian(0.0, 2.0);

  CalibrationStore::BatchPrunedScan Scan;
  Live.prepareBatchPrunedScan(Queries.rowPtr(0), NumQ, Queries.stride(),
                              Cfg, Scan);
  ASSERT_TRUE(Scan.Active);
  ASSERT_EQ(Scan.PerQuery.size(), NumQ);

  for (size_t Q = 0; Q < NumQ; ++Q) {
    SCOPED_TRACE("query " + std::to_string(Q));
    AssessmentScratch WithBatch, Standalone;
    Live.selectForAssessment(Queries.rowPtr(Q), Cfg, WithBatch, &Scan, Q);
    Live.selectForAssessment(Queries.rowPtr(Q), Cfg, Standalone);

    ASSERT_EQ(WithBatch.Keep, Standalone.Keep);
    EXPECT_EQ(WithBatch.SelectedAll, Standalone.SelectedAll);
    ASSERT_EQ(WithBatch.Keyed.size(), Standalone.Keyed.size());
    for (size_t I = 0; I < WithBatch.Keyed.size(); ++I) {
      EXPECT_EQ(prom::testing::bits(WithBatch.Keyed[I].first),
                prom::testing::bits(Standalone.Keyed[I].first));
      EXPECT_EQ(WithBatch.Keyed[I].second, Standalone.Keyed[I].second);
    }
    ASSERT_EQ(WithBatch.SelectedMask, Standalone.SelectedMask);
    ASSERT_EQ(WithBatch.WeightByEntry.size(),
              Standalone.WeightByEntry.size());
    for (size_t I = 0; I < WithBatch.WeightByEntry.size(); ++I)
      EXPECT_EQ(prom::testing::bits(WithBatch.WeightByEntry[I]),
                prom::testing::bits(Standalone.WeightByEntry[I]));

    EXPECT_TRUE(WithBatch.Pruned.Used);
    EXPECT_EQ(WithBatch.Pruned.ListsTotal, Standalone.Pruned.ListsTotal);
    EXPECT_EQ(WithBatch.Pruned.ListsScanned,
              Standalone.Pruned.ListsScanned);
    EXPECT_EQ(WithBatch.Pruned.RowsTotal, Standalone.Pruned.RowsTotal);
    EXPECT_EQ(WithBatch.Pruned.RowsScanned,
              Standalone.Pruned.RowsScanned);
    // The scan records each query's stats in its own slot.
    EXPECT_EQ(Scan.PerQuery[Q].RowsScanned,
              Standalone.Pruned.RowsScanned);
    EXPECT_EQ(Scan.PerQuery[Q].ListsScanned,
              Standalone.Pruned.ListsScanned);
  }

  // The aggregate is the ascending-slot fold of the per-query counters.
  PrunedScanStats Fold;
  for (const PrunedScanStats &S : Scan.PerQuery)
    Fold += S;
  PrunedScanStats Agg = Scan.aggregated();
  EXPECT_TRUE(Agg.Used);
  EXPECT_EQ(Agg.ListsTotal, Fold.ListsTotal);
  EXPECT_EQ(Agg.ListsScanned, Fold.ListsScanned);
  EXPECT_EQ(Agg.RowsTotal, Fold.RowsTotal);
  EXPECT_EQ(Agg.RowsScanned, Fold.RowsScanned);

  // A store whose routing is off prepares an inactive scan, and the
  // selection entry point must then behave exactly as if no batch existed.
  CalibrationStore::BatchPrunedScan Off;
  ClusterIndexPolicy Disabled;
  Disabled.Enabled = false;
  Live.setIndexPolicy(Disabled);
  Live.prepareBatchPrunedScan(Queries.rowPtr(0), NumQ, Queries.stride(),
                              Cfg, Off);
  EXPECT_FALSE(Off.Active);
  AssessmentScratch S;
  Live.selectForAssessment(Queries.rowPtr(0), Cfg, S, &Off, 0);
  EXPECT_FALSE(S.Pruned.Used);
}

} // namespace

TEST(StorePropertyTest, RandomLifecyclesMatchFromScratchRebuild) {
  for (uint64_t Seed : {20260701ull, 20260702ull, 20260703ull, 20260704ull,
                        20260705ull, 20260706ull})
    runRandomProgram(Seed);
}

TEST(StorePropertyTest, PrunedLifecyclesMatchExactScan) {
  for (uint64_t Seed : {20260801ull, 20260802ull, 20260803ull, 20260804ull,
                        20260805ull, 20260806ull, 20260807ull, 20260808ull})
    runPrunedProgram(Seed);
}

TEST(StorePropertyTest, BatchPreparedScansMatchPerQuerySelection) {
  for (uint64_t Seed : {20260811ull, 20260812ull, 20260813ull, 20260814ull,
                        20260815ull, 20260816ull})
    runBatchPreparedProgram(Seed);
}

TEST(StorePropertyTest, ReplaySeedFromEnvironment) {
  // Developer loop: PROM_STORE_PROP_SEED=<n> re-runs exactly the program a
  // failure named. A no-op when the variable is unset.
  const char *Env = std::getenv("PROM_STORE_PROP_SEED");
  if (!Env)
    GTEST_SKIP() << "PROM_STORE_PROP_SEED not set";
  uint64_t Seed = std::strtoull(Env, nullptr, 10);
  runRandomProgram(Seed);
  runPrunedProgram(Seed);
}
