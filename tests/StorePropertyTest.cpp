//===- tests/StorePropertyTest.cpp - randomized store lifecycle fuzzing -------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Randomized property test for the CalibrationStore lifecycle: a random
// interleaving of appendEntries()+refinalize(), appendEntries()+
// refinalizeFull(), reshard(), and eviction-bound changes must leave the
// store bit-identical — through the exact engine entry points the batched
// assessment uses — to a brand-new store finalized from scratch on the
// mirrored surviving entries. This is the generalization of RefreshTest's
// hand-picked scenarios: whatever sequence deployment throws at the store,
// the incremental indexes may never drift from the rebuild semantics.
//
// Every program is seeded and the failing seed is printed on mismatch;
// replay one seed with PROM_STORE_PROP_SEED=<seed> (runs in addition to
// the fixed sweep).
//
//===----------------------------------------------------------------------===//

#include "tests/StoreTestHelpers.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace prom;
using prom::testing::expectBothRegimesMatch;
using prom::testing::makeEntries;
using prom::testing::referenceStore;

namespace {

constexpr size_t Dim = 5;
constexpr int NumLabels = 3;
constexpr size_t NumExperts = 2;

/// Applies the refinalize() eviction contract to the mirror: oldest-first
/// down to \p MaxEntries (0 = unbounded).
void applyEviction(std::vector<CalibrationEntry> &Mirror, size_t MaxEntries) {
  if (MaxEntries > 0 && Mirror.size() > MaxEntries)
    Mirror.erase(Mirror.begin(),
                 Mirror.begin() +
                     static_cast<long>(Mirror.size() - MaxEntries));
}

/// One random store program: ~12 lifecycle operations with a from-scratch
/// comparison every third step and at the end.
void runRandomProgram(uint64_t Seed) {
  SCOPED_TRACE("failure seed " + std::to_string(Seed) +
               " (replay: PROM_STORE_PROP_SEED=" + std::to_string(Seed) +
               ")");
  support::Rng R(Seed);

  size_t K = 1 + R.bounded(8);
  std::vector<CalibrationEntry> Mirror =
      makeEntries(200 + R.bounded(400), Dim, NumLabels, NumExperts, R);
  CalibrationStore Live;
  Live.reserve(Mirror.size());
  for (const CalibrationEntry &E : Mirror)
    Live.add(E);
  Live.finalize(K);
  size_t MaxEntries = 0;

  const int NumOps = 12;
  for (int Op = 0; Op < NumOps; ++Op) {
    SCOPED_TRACE("op " + std::to_string(Op));
    switch (R.bounded(5)) {
    case 0:   // Incremental refresh, small batch.
    case 1: { // (Twice as likely: the workhorse operation.)
      std::vector<CalibrationEntry> Fresh =
          makeEntries(1 + R.bounded(300), Dim, NumLabels, NumExperts, R);
      Mirror.insert(Mirror.end(), Fresh.begin(), Fresh.end());
      Live.appendEntries(std::move(Fresh));
      Live.refinalize();
      applyEviction(Mirror, MaxEntries);
      break;
    }
    case 2: { // Full-rebuild refresh on the same staged-entry semantics.
      std::vector<CalibrationEntry> Fresh =
          makeEntries(1 + R.bounded(128), Dim, NumLabels, NumExperts, R);
      Mirror.insert(Mirror.end(), Fresh.begin(), Fresh.end());
      Live.appendEntries(std::move(Fresh));
      Live.refinalizeFull();
      applyEviction(Mirror, MaxEntries);
      break;
    }
    case 3: { // Re-partition; verdicts must not depend on the layout.
      K = 1 + R.bounded(8);
      Live.reshard(K);
      break;
    }
    case 4: { // Move the eviction bound (applies on the next refinalize).
      MaxEntries = R.bounded(3) == 0 ? 0 : 128 + R.bounded(512);
      Live.setMaxEntries(MaxEntries);
      break;
    }
    }

    if (Op % 3 == 2 || Op == NumOps - 1) {
      CalibrationStore Ref = referenceStore(Mirror, K);
      expectBothRegimesMatch(Live, Ref, Seed ^ static_cast<uint64_t>(Op),
                             ("after op " + std::to_string(Op)).c_str());
      if (::testing::Test::HasFailure()) {
        ADD_FAILURE() << "store property violated; failure seed " << Seed
                      << " — replay with PROM_STORE_PROP_SEED=" << Seed;
        return;
      }
    }
  }
}

} // namespace

TEST(StorePropertyTest, RandomLifecyclesMatchFromScratchRebuild) {
  for (uint64_t Seed : {20260701ull, 20260702ull, 20260703ull, 20260704ull,
                        20260705ull, 20260706ull})
    runRandomProgram(Seed);
}

TEST(StorePropertyTest, ReplaySeedFromEnvironment) {
  // Developer loop: PROM_STORE_PROP_SEED=<n> re-runs exactly the program a
  // failure named. A no-op when the variable is unset.
  const char *Env = std::getenv("PROM_STORE_PROP_SEED");
  if (!Env)
    GTEST_SKIP() << "PROM_STORE_PROP_SEED not set";
  runRandomProgram(std::strtoull(Env, nullptr, 10));
}
