//===- tests/ThreadPoolTest.cpp - worker pool tests ---------------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

using prom::support::ThreadPool;

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1013);
  Pool.parallelFor(Hits.size(), [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Hits[I].fetch_add(1);
  });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, ChunksAreContiguousAndOrderedWithinRange) {
  ThreadPool Pool(3);
  std::mutex M;
  std::vector<std::pair<size_t, size_t>> Ranges;
  Pool.parallelFor(100, [&](size_t Begin, size_t End) {
    EXPECT_LT(Begin, End);
    std::lock_guard<std::mutex> Lock(M);
    Ranges.push_back({Begin, End});
  });
  // Ranges must tile [0, 100) without overlap.
  std::sort(Ranges.begin(), Ranges.end());
  size_t Expect = 0;
  for (const auto &[Begin, End] : Ranges) {
    EXPECT_EQ(Begin, Expect);
    Expect = End;
  }
  EXPECT_EQ(Expect, 100u);
}

TEST(ThreadPoolTest, DeterministicResultsAcrossThreadCounts) {
  // The same reduction, written per-slot, must be identical no matter how
  // many workers execute it.
  auto Run = [](size_t Threads) {
    ThreadPool Pool(Threads);
    std::vector<double> Out(512);
    Pool.parallelFor(Out.size(), [&](size_t Begin, size_t End) {
      for (size_t I = Begin; I < End; ++I)
        Out[I] = static_cast<double>(I) * 1.5 + 1.0 / (1.0 + I);
    });
    return Out;
  };
  std::vector<double> One = Run(1), Four = Run(4), Seven = Run(7);
  for (size_t I = 0; I < One.size(); ++I) {
    EXPECT_EQ(One[I], Four[I]);
    EXPECT_EQ(One[I], Seven[I]);
  }
}

TEST(ThreadPoolTest, SingleLanePoolRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numThreads(), 1u);
  size_t Calls = 0;
  Pool.parallelFor(10, [&](size_t Begin, size_t End) {
    ++Calls;
    EXPECT_EQ(Begin, 0u);
    EXPECT_EQ(End, 10u);
  });
  EXPECT_EQ(Calls, 1u); // One inline chunk, no partitioning.
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool Pool(2);
  bool Called = false;
  Pool.parallelFor(0, [&](size_t, size_t) { Called = true; });
  EXPECT_FALSE(Called);
}

TEST(ThreadPoolTest, ReusableAcrossManyRegions) {
  ThreadPool Pool(4);
  for (int Round = 0; Round < 50; ++Round) {
    std::atomic<long> Sum{0};
    Pool.parallelFor(200, [&](size_t Begin, size_t End) {
      long Local = 0;
      for (size_t I = Begin; I < End; ++I)
        Local += static_cast<long>(I);
      Sum.fetch_add(Local);
    });
    EXPECT_EQ(Sum.load(), 199L * 200L / 2L);
  }
}

TEST(NestedParallelForTest, RunsInlineInsteadOfDeadlocking) {
  ThreadPool Pool(4);
  std::atomic<int> Inner{0};
  Pool.parallelFor(8, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      ThreadPool::global().parallelFor(4, [&](size_t B, size_t E) {
        Inner.fetch_add(static_cast<int>(E - B));
      });
  });
  EXPECT_EQ(Inner.load(), 32);
}

TEST(NestedParallelForTest, SamePoolNestingRunsInline) {
  // The refinalize() fan-out nests directly on the same pool when a
  // refresh is driven from inside an assessment region (a service worker
  // calling back into the store); both the worker lanes and the
  // participating caller lane must degrade to inline execution.
  ThreadPool Pool(4);
  std::atomic<int> Inner{0};
  Pool.parallelFor(8, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Pool.parallelFor(4, [&](size_t B, size_t E) {
        Inner.fetch_add(static_cast<int>(E - B));
      });
  });
  EXPECT_EQ(Inner.load(), 32);
}

TEST(NestedParallelForTest, ExternalThreadsContendingForThePoolStaySafe) {
  // The self-recalibrating server's steady state: service batcher threads
  // drive assessment fan-outs while the RecalibrationController thread
  // drives refinalize() fan-outs on the same global pool. Regions must
  // serialize without deadlock and every region must stay exact.
  ThreadPool Pool(4);
  constexpr size_t Callers = 3, Rounds = 40, N = 257;
  std::atomic<size_t> Failures{0};
  std::vector<std::thread> Threads;
  for (size_t C = 0; C < Callers; ++C)
    Threads.emplace_back([&, C] {
      std::vector<int> Out(N);
      for (size_t Round = 0; Round < Rounds; ++Round) {
        std::fill(Out.begin(), Out.end(), 0);
        Pool.parallelFor(N, [&](size_t Begin, size_t End) {
          for (size_t I = Begin; I < End; ++I)
            Out[I] += static_cast<int>(C + 1);
        });
        for (size_t I = 0; I < N; ++I)
          if (Out[I] != static_cast<int>(C + 1))
            Failures.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
}
