//===- tests/KernelTest.cpp - kernel bit-identity and semantics -------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The determinism contract of support/Kernels: the dispatched variant
// (AVX2 when the build + CPU provide it, otherwise the scalar reference
// itself) must be bit-identical to the scalar reference on every input —
// odd lengths, tail remainders, zero length, NaN propagation, zero-heavy
// matmul operands. CI runs this suite in both the scalar-only and the
// AVX2 build configuration.
//
//===----------------------------------------------------------------------===//

#include "support/Distance.h"
#include "support/FeatureMatrix.h"
#include "support/Kernels.h"
#include "support/Matrix.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

using namespace prom;
using namespace prom::support;

namespace {

/// Exact bit comparison (EXPECT_EQ treats -0.0 == +0.0 and NaN != NaN;
/// the kernel contract is stronger than numeric equality).
void expectSameBits(double A, double B, const char *What) {
  uint64_t BitsA, BitsB;
  std::memcpy(&BitsA, &A, sizeof(BitsA));
  std::memcpy(&BitsB, &B, sizeof(BitsB));
  EXPECT_EQ(BitsA, BitsB) << What << ": " << A << " vs " << B;
}

std::vector<double> randomVec(size_t N, Rng &R) {
  std::vector<double> V(N);
  for (double &X : V)
    X = R.gaussian(0.0, 3.0);
  return V;
}

} // namespace

TEST(KernelTest, ReportsActiveIsa) {
  // Smoke: the dispatcher settled on one of the two variants.
  const char *Name = kernels::activeIsaName();
  EXPECT_TRUE(std::strcmp(Name, "avx2") == 0 ||
              std::strcmp(Name, "scalar") == 0);
  EXPECT_EQ(kernels::avx2Active(), std::strcmp(Name, "avx2") == 0);
}

TEST(KernelTest, L2SqMatchesScalarOnEveryLengthClass) {
  Rng R(11);
  // 0 (empty), 1..2*lanes (every tail shape), odd primes, and lengths
  // around typical embedding widths.
  for (size_t N : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 13u, 31u, 64u, 67u,
                   127u, 500u}) {
    std::vector<double> A = randomVec(N, R), B = randomVec(N, R);
    expectSameBits(kernels::l2Sq(A.data(), B.data(), N),
                   kernels::scalar::l2Sq(A.data(), B.data(), N), "l2Sq");
  }
  EXPECT_EQ(kernels::l2Sq(nullptr, nullptr, 0), 0.0);
}

TEST(KernelTest, DotMatchesScalarOnEveryLengthClass) {
  Rng R(12);
  for (size_t N : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 9u, 33u, 64u, 101u}) {
    std::vector<double> A = randomVec(N, R), B = randomVec(N, R);
    expectSameBits(kernels::dot(A.data(), B.data(), N),
                   kernels::scalar::dot(A.data(), B.data(), N), "dot");
  }
}

TEST(KernelTest, AxpyMatchesScalar) {
  Rng R(13);
  for (size_t N : {0u, 1u, 5u, 8u, 31u, 64u}) {
    std::vector<double> A = randomVec(N, R), B = randomVec(N, R);
    std::vector<double> ADispatch = A, AScalar = A;
    kernels::axpy(ADispatch.data(), B.data(), 1.7, N);
    kernels::scalar::axpy(AScalar.data(), B.data(), 1.7, N);
    for (size_t I = 0; I < N; ++I)
      expectSameBits(ADispatch[I], AScalar[I], "axpy");
  }
}

TEST(KernelTest, NaNPropagatesIdentically) {
  Rng R(14);
  for (size_t Pos : {0u, 3u, 6u}) { // Vector body and tail lanes.
    std::vector<double> A = randomVec(7, R), B = randomVec(7, R);
    A[Pos] = std::numeric_limits<double>::quiet_NaN();
    double D = kernels::l2Sq(A.data(), B.data(), A.size());
    double S = kernels::scalar::l2Sq(A.data(), B.data(), A.size());
    EXPECT_TRUE(std::isnan(D));
    EXPECT_TRUE(std::isnan(S));
    expectSameBits(D, S, "l2Sq NaN");
    expectSameBits(kernels::dot(A.data(), B.data(), A.size()),
                   kernels::scalar::dot(A.data(), B.data(), A.size()),
                   "dot NaN");
  }
}

TEST(KernelTest, BatchedScanMatchesSingleRowCalls) {
  Rng R(15);
  for (size_t Dim : {1u, 4u, 7u, 32u, 65u}) {
    FeatureMatrix M(37, Dim); // Odd row count exercises the 2-row unroll tail.
    for (size_t I = 0; I < M.rows(); ++I) {
      std::vector<double> Row = randomVec(Dim, R);
      M.setRow(I, Row.data());
    }
    std::vector<double> Q = randomVec(Dim, R);
    std::vector<double> Out(M.rows());
    kernels::l2Sq1xN(Q.data(), M.data(), M.rows(), M.dim(), M.stride(),
                     Out.data());
    for (size_t I = 0; I < M.rows(); ++I) {
      expectSameBits(Out[I], kernels::l2Sq(Q.data(), M.rowPtr(I), Dim),
                     "l2Sq1xN vs l2Sq");
      expectSameBits(Out[I],
                     kernels::scalar::l2Sq(Q.data(), M.rowPtr(I), Dim),
                     "l2Sq1xN vs scalar");
    }
  }
}

TEST(KernelTest, BatchedMxNScanMatchesPerQueryScans) {
  // The whole-batch scan behind the batched k-NN forwards: row Q of the
  // output must be bit-identical to a 1xN scan of query Q alone (and to
  // the scalar reference), for odd query counts and lengths.
  Rng R(19);
  for (size_t Dim : {1u, 4u, 7u, 33u}) {
    FeatureMatrix Points(29, Dim);
    for (size_t I = 0; I < Points.rows(); ++I) {
      std::vector<double> Row = randomVec(Dim, R);
      Points.setRow(I, Row.data());
    }
    FeatureMatrix Queries(11, Dim);
    for (size_t Q = 0; Q < Queries.rows(); ++Q) {
      std::vector<double> Row = randomVec(Dim, R);
      Queries.setRow(Q, Row.data());
    }

    std::vector<double> Out(Queries.rows() * Points.rows());
    kernels::l2SqMxN(Queries.data(), Queries.rows(), Queries.stride(),
                     Points.data(), Points.rows(), Points.dim(),
                     Points.stride(), Out.data());
    std::vector<double> ScalarOut(Out.size());
    kernels::scalar::l2SqMxN(Queries.data(), Queries.rows(),
                             Queries.stride(), Points.data(), Points.rows(),
                             Points.dim(), Points.stride(),
                             ScalarOut.data());

    std::vector<double> RowOut(Points.rows());
    for (size_t Q = 0; Q < Queries.rows(); ++Q) {
      kernels::l2Sq1xN(Queries.rowPtr(Q), Points.data(), Points.rows(),
                       Points.dim(), Points.stride(), RowOut.data());
      for (size_t I = 0; I < Points.rows(); ++I) {
        expectSameBits(Out[Q * Points.rows() + I], RowOut[I],
                       "l2SqMxN vs l2Sq1xN");
        expectSameBits(Out[Q * Points.rows() + I],
                       ScalarOut[Q * Points.rows() + I],
                       "l2SqMxN vs scalar");
      }
    }
  }
}

TEST(KernelTest, MatmulMatchesScalarIncludingZeroSkip) {
  Rng R(16);
  // Shapes straddling the lane width and the K tile, with ~40% exact
  // zeros in A to exercise the sparse-activation skip identically.
  struct Shape {
    size_t N, K, M;
  };
  for (Shape S : {Shape{3, 5, 7}, Shape{8, 16, 4}, Shape{5, 300, 9},
                  Shape{17, 64, 33}}) {
    std::vector<double> A = randomVec(S.N * S.K, R);
    for (double &V : A)
      if (R.uniform(0.0, 1.0) < 0.4)
        V = 0.0;
    std::vector<double> B = randomVec(S.K * S.M, R);
    std::vector<double> Bias = randomVec(S.M, R);
    for (const double *BiasPtr :
         {static_cast<const double *>(Bias.data()),
          static_cast<const double *>(nullptr)}) {
      std::vector<double> OutD(S.N * S.M), OutS(S.N * S.M);
      kernels::matmul(A.data(), S.N, S.K, B.data(), S.M, BiasPtr,
                      OutD.data());
      kernels::scalar::matmul(A.data(), S.N, S.K, B.data(), S.M, BiasPtr,
                              OutS.data());
      for (size_t I = 0; I < OutD.size(); ++I)
        expectSameBits(OutD[I], OutS[I], "matmul");
    }
  }
}

TEST(KernelTest, MatmulMatchesPerSampleAffineLoop) {
  // The batched model forwards rely on row I of the kernel matmul being
  // bit-identical to the historic per-sample loop (out = bias; for k:
  // out += a_k * B[k], skipping zero activations).
  Rng R(17);
  size_t N = 6, K = 19, M = 5;
  std::vector<double> A = randomVec(N * K, R);
  for (double &V : A)
    if (R.uniform(0.0, 1.0) < 0.3)
      V = 0.0;
  std::vector<double> B = randomVec(K * M, R);
  std::vector<double> Bias = randomVec(M, R);
  std::vector<double> Out(N * M);
  kernels::matmul(A.data(), N, K, B.data(), M, Bias.data(), Out.data());
  for (size_t I = 0; I < N; ++I) {
    std::vector<double> Ref = Bias;
    for (size_t KK = 0; KK < K; ++KK) {
      double AIK = A[I * K + KK];
      if (AIK == 0.0)
        continue;
      for (size_t J = 0; J < M; ++J)
        Ref[J] += AIK * B[KK * M + J];
    }
    for (size_t J = 0; J < M; ++J)
      expectSameBits(Out[I * M + J], Ref[J], "matmul vs per-sample");
  }
}

TEST(KernelTest, FeatureMatrixPadsRowsToLaneMultiples) {
  FeatureMatrix M(3, 5);
  EXPECT_EQ(M.rows(), 3u);
  EXPECT_EQ(M.dim(), 5u);
  EXPECT_EQ(M.stride() % kernels::KernelLanes, 0u);
  EXPECT_GE(M.stride(), M.dim());

  std::vector<double> Row = {1, 2, 3, 4, 5};
  M.setRow(1, Row.data());
  EXPECT_EQ(M.row(1), Row);
  // Padding stays zero and is never part of a row() copy.
  EXPECT_EQ(M.rowPtr(1)[5], 0.0);

  FeatureMatrix F = FeatureMatrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(F.rows(), 3u);
  EXPECT_EQ(F.dim(), 2u);
  EXPECT_EQ(F.row(2), (std::vector<double>{5, 6}));
  EXPECT_TRUE(FeatureMatrix::fromRows({}).empty());
}

TEST(KernelTest, DistanceWrappersUseTheKernels) {
  Rng R(18);
  std::vector<double> A = randomVec(11, R), B = randomVec(11, R);
  expectSameBits(squaredEuclidean(A, B),
                 kernels::l2Sq(A.data(), B.data(), A.size()),
                 "squaredEuclidean wrapper");
  expectSameBits(euclidean(A, B),
                 std::sqrt(kernels::l2Sq(A.data(), B.data(), A.size())),
                 "euclidean wrapper");
  expectSameBits(dot(A, B), kernels::dot(A.data(), B.data(), A.size()),
                 "dot wrapper");
}
