//===- tests/ShardedStoreTest.cpp - shard-count invariance --------------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The sharded CalibrationStore must be a pure work-partitioning
// transformation: for any shard count, verdicts are bit-identical to the
// unsharded (K=1) path and to the assessSerial() oracle — exact
// floating-point equality on every expert score. Covers the general
// weighted path (block-partial merge), the unweighted full-selection fast
// path (per-shard sorted-index counts), the regressor, and reshard().
//
//===----------------------------------------------------------------------===//

#include "core/Detector.h"
#include "data/Split.h"
#include "ml/Linear.h"
#include "ml/Mlp.h"
#include "support/Kernels.h"
#include "support/ThreadPool.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <cassert>
#include <cstring>

using namespace prom;
using prom::testing::gaussianBlobs;
using prom::testing::linearRegression;

namespace {

void expectSameVerdict(const Verdict &A, const Verdict &B, size_t Index) {
  SCOPED_TRACE("sample " + std::to_string(Index));
  EXPECT_EQ(A.Predicted, B.Predicted);
  EXPECT_EQ(A.Drifted, B.Drifted);
  EXPECT_EQ(A.VotesToFlag, B.VotesToFlag);
  ASSERT_EQ(A.Experts.size(), B.Experts.size());
  for (size_t E = 0; E < A.Experts.size(); ++E) {
    EXPECT_EQ(A.Experts[E].Credibility, B.Experts[E].Credibility);
    EXPECT_EQ(A.Experts[E].Confidence, B.Experts[E].Confidence);
    EXPECT_EQ(A.Experts[E].PredictionSetSize,
              B.Experts[E].PredictionSetSize);
    EXPECT_EQ(A.Experts[E].FlagDrift, B.Experts[E].FlagDrift);
  }
}

void expectSameVerdicts(const std::vector<Verdict> &A,
                        const std::vector<Verdict> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    expectSameVerdict(A[I], B[I], I);
}

/// A calibration set spanning several accumulation blocks (> 2048 entries
/// would be 8 blocks; this gives at least 8) so K=8 builds real shards.
struct BigBlobFixture {
  support::Rng R{321};
  data::Dataset Train, Calib, Test;
  ml::LogisticRegression Model;

  BigBlobFixture() {
    data::Dataset Full = gaussianBlobs(3, 900, 4.0, 0.9, R);
    auto Split = data::calibrationPartition(Full, R, 0.8,
                                            /*MaxCalibration=*/4000);
    Train = std::move(Split.first);
    Calib = std::move(Split.second);
    assert(Calib.size() > 8 * 256 && "fixture must span > 8 accum blocks");
    Model.fit(Train, R);
    Test = gaussianBlobs(3, 40, 4.0, 0.9, R);
    // Mix in novel far-out points so drift flags actually fire.
    for (int I = 0; I < 40; ++I) {
      data::Sample Novel;
      Novel.Features = {R.gaussian(0.0, 0.6), R.gaussian(0.0, 0.6)};
      Novel.Label = 0;
      Test.add(std::move(Novel));
    }
  }
};

BigBlobFixture &fixture() {
  static BigBlobFixture F;
  return F;
}

} // namespace

TEST(ShardedStoreTest, WeightedPathShardCountInvariant) {
  BigBlobFixture &F = fixture();
  // > 8 accumulation blocks, so K=8 builds genuinely multi-block shards.
  ASSERT_GT(F.Calib.size(), 8u * 256u);

  PromConfig C1;
  C1.NumShards = 1;
  PromClassifier P1(F.Model, C1);
  P1.calibrate(F.Calib);
  ASSERT_EQ(P1.numShards(), 1u);

  PromConfig C8 = C1;
  C8.NumShards = 8;
  PromClassifier P8(F.Model, C8);
  P8.calibrate(F.Calib);
  ASSERT_GE(P8.numShards(), 2u);

  std::vector<Verdict> V1 = P1.assessBatch(F.Test);
  std::vector<Verdict> V8 = P8.assessBatch(F.Test);
  expectSameVerdicts(V1, V8);

  // Both must also match the retained per-sample oracle.
  for (size_t I = 0; I < F.Test.size(); I += 7)
    expectSameVerdict(P8.assessSerial(F.Test[I]), V8[I], I);
}

TEST(ShardedStoreTest, UnweightedFastPathShardCountInvariant) {
  BigBlobFixture &F = fixture();

  // Unweighted counting over the full selection drives the per-shard
  // sorted-score-index fast path.
  PromConfig Base;
  Base.WeightMode = CalibrationWeightMode::None;
  Base.SelectAllBelow = 1u << 20;

  PromConfig C1 = Base;
  C1.NumShards = 1;
  PromConfig C8 = Base;
  C8.NumShards = 8;
  PromClassifier P1(F.Model, C1), P8(F.Model, C8);
  P1.calibrate(F.Calib);
  P8.calibrate(F.Calib);
  ASSERT_GE(P8.numShards(), 2u);

  expectSameVerdicts(P1.assessBatch(F.Test), P8.assessBatch(F.Test));
  for (size_t I = 0; I < F.Test.size(); I += 9)
    expectSameVerdict(P8.assessSerial(F.Test[I]),
                      P8.assess(F.Test[I]), I);
}

TEST(ShardedStoreTest, ReshardLeavesVerdictsUnchanged) {
  BigBlobFixture &F = fixture();

  PromClassifier Prom(F.Model);
  Prom.calibrate(F.Calib);
  std::vector<Verdict> Before = Prom.assessBatch(F.Test);

  for (size_t K : {8u, 3u, 1u, 16u}) {
    Prom.reshard(K);
    SCOPED_TRACE("K=" + std::to_string(K));
    expectSameVerdicts(Before, Prom.assessBatch(F.Test));
  }
}

TEST(ShardedStoreTest, AutoShardCountUsesPoolLanes) {
  BigBlobFixture &F = fixture();

  PromConfig Auto;
  Auto.NumShards = 0; // One shard per ThreadPool lane.
  PromClassifier Prom(F.Model, Auto);
  Prom.calibrate(F.Calib);
  size_t Lanes = support::ThreadPool::global().numThreads();
  EXPECT_LE(Prom.numShards(), std::max<size_t>(Lanes, 1));
  EXPECT_GE(Prom.numShards(), 1u);

  PromConfig One;
  One.NumShards = 1;
  PromClassifier Ref(F.Model, One);
  Ref.calibrate(F.Calib);
  // NumShards differs between the configs, but it is the only difference
  // and must not affect a single bit of the verdicts.
  expectSameVerdicts(Ref.assessBatch(F.Test), Prom.assessBatch(F.Test));
}

TEST(ShardedStoreTest, FeatureMatrixScanMatchesPerRowVectorScan) {
  // Property check of the flat-storage refactor: the distance keys the
  // FeatureMatrix-backed store streams out of its contiguous block must
  // be bit-identical to scanning the original per-row entry vectors (the
  // pre-refactor vector<vector<double>> path) with the same kernel — so
  // moving the storage cannot change a single verdict.
  support::Rng R(99);
  CalibrationScores Scores;
  size_t Dim = 7; // Odd width: every row exercises the kernel tail.
  for (size_t I = 0; I < 700; ++I) {
    CalibrationEntry E;
    for (size_t D = 0; D < Dim; ++D)
      E.Embed.push_back(R.gaussian(0.0, 2.0));
    E.Label = static_cast<int>(I % 3);
    E.Scores = {R.uniform(0.0, 1.0)};
    Scores.add(std::move(E));
  }
  Scores.finalize();

  PromConfig Cfg;
  AssessmentScratch S;
  for (int Q = 0; Q < 5; ++Q) {
    std::vector<double> Query;
    for (size_t D = 0; D < Dim; ++D)
      Query.push_back(R.gaussian(0.0, 2.0));

    S.Keyed.resize(Scores.size());
    S.Dists.resize(Scores.size());
    Scores.computeDistanceKeys(Query.data(), S, 0, Scores.size());
    for (size_t I = 0; I < Scores.size(); ++I) {
      double PerRow = support::kernels::l2Sq(
          Scores.entry(I).Embed.data(), Query.data(), Dim);
      uint64_t GotBits, RefBits;
      std::memcpy(&GotBits, &S.Keyed[I].first, sizeof(GotBits));
      std::memcpy(&RefBits, &PerRow, sizeof(RefBits));
      ASSERT_EQ(GotBits, RefBits) << "entry " << I;
    }
    // And the full selection built on those keys matches the serial
    // oracle's select() set and weights exactly.
    Scores.finishSelection(Cfg, S);
    CalibrationSelection Sel = Scores.select(Query, Cfg);
    ASSERT_EQ(Sel.Indices.size(), S.Keep);
    for (size_t Pos = 0; Pos < Sel.Indices.size(); ++Pos) {
      EXPECT_EQ(S.SelectedMask[Sel.Indices[Pos]], 1);
      EXPECT_EQ(S.WeightByEntry[Sel.Indices[Pos]], Sel.Weights[Pos]);
    }
  }
}

TEST(ShardedStoreTest, RegressorShardCountInvariant) {
  support::Rng R(77);
  data::Dataset Train = linearRegression(400, 0.1, R);
  data::Dataset Calib = linearRegression(1200, 0.1, R);
  ml::MlpRegressor Model;
  Model.fit(Train, R);

  PromConfig C1;
  C1.FixedClusters = 4;
  C1.NumShards = 1;
  PromConfig C8 = C1;
  C8.NumShards = 8;

  // Identical RNG streams so clustering matches between the two.
  support::Rng R1(5), R8(5);
  PromRegressor P1(Model, C1), P8(Model, C8);
  P1.calibrate(Calib, R1);
  P8.calibrate(Calib, R8);
  ASSERT_GE(P8.numShards(), 2u);

  data::Dataset Test("reg-mixed", 0);
  for (int I = 0; I < 90; ++I) {
    data::Sample S;
    double Lo = I % 3 == 0 ? 5.0 : -2.0, Hi = I % 3 == 0 ? 9.0 : 2.0;
    S.Features = {R.uniform(Lo, Hi), R.uniform(Lo, Hi)};
    S.Target = 2.0 * S.Features[0] - S.Features[1];
    Test.add(std::move(S));
  }

  std::vector<RegressionVerdict> V1 = P1.assessBatch(Test);
  std::vector<RegressionVerdict> V8 = P8.assessBatch(Test);
  ASSERT_EQ(V1.size(), V8.size());
  for (size_t I = 0; I < V1.size(); ++I) {
    SCOPED_TRACE("sample " + std::to_string(I));
    EXPECT_EQ(V1[I].Predicted, V8[I].Predicted);
    EXPECT_EQ(V1[I].Cluster, V8[I].Cluster);
    EXPECT_EQ(V1[I].Drifted, V8[I].Drifted);
    EXPECT_EQ(V1[I].VotesToFlag, V8[I].VotesToFlag);
    ASSERT_EQ(V1[I].Experts.size(), V8[I].Experts.size());
    for (size_t E = 0; E < V1[I].Experts.size(); ++E) {
      EXPECT_EQ(V1[I].Experts[E].Credibility, V8[I].Experts[E].Credibility);
      EXPECT_EQ(V1[I].Experts[E].Confidence, V8[I].Experts[E].Confidence);
    }
  }
}
