//===- tests/ClusterIndexTest.cpp - Lossless cluster-pruned k-NN -----------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-identity suite of the cluster-pruned k-NN layer: kMeansMatrix
/// against a serial in-test reference (which pins the parallel
/// implementation across thread counts — CMake registers this binary under
/// PROM_THREADS=1 and 4 and under PROM_KERNELS=scalar), and
/// ClusterIndex::nearestPruned against the exact full-scan selection,
/// including duplicate, tie-heavy, and fully degenerate inputs.
///
//===----------------------------------------------------------------------===//

#include "support/ClusterIndex.h"
#include "support/Distance.h"
#include "support/KMeans.h"
#include "support/Kernels.h"
#include "support/Rng.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

using namespace prom;
using namespace prom::support;
using prom::testing::bits;

namespace {

/// Random (N x Dim) feature block.
FeatureMatrix randomRows(size_t N, size_t Dim, Rng &R, double Spread = 4.0) {
  FeatureMatrix M(N, Dim);
  for (size_t I = 0; I < N; ++I)
    for (size_t D = 0; D < Dim; ++D)
      M.rowPtr(I)[D] = R.gaussian(0.0, Spread);
  return M;
}

/// Tie-heavy block: every coordinate drawn from a tiny integer set, so
/// exact duplicate rows and exact distance ties abound.
FeatureMatrix gridRows(size_t N, size_t Dim, Rng &R) {
  FeatureMatrix M(N, Dim);
  for (size_t I = 0; I < N; ++I)
    for (size_t D = 0; D < Dim; ++D)
      M.rowPtr(I)[D] = static_cast<double>(R.bounded(3));
  return M;
}

/// The exact oracle: full l2Sq1xN scan + selectNearest, returned in the
/// same (distSq, id) pair form nearestPruned produces.
std::vector<std::pair<double, uint32_t>>
fullScanNearest(const FeatureMatrix &Rows, const double *Query, size_t K) {
  std::vector<double> DistSq(Rows.rows());
  kernels::l2Sq1xN(Query, Rows.data(), Rows.rows(), Rows.dim(),
                   Rows.stride(), DistSq.data());
  std::vector<size_t> Near = selectNearest(DistSq.data(), Rows.rows(), K);
  std::vector<std::pair<double, uint32_t>> Out;
  Out.reserve(Near.size());
  for (size_t Idx : Near)
    Out.push_back({DistSq[Idx], static_cast<uint32_t>(Idx)});
  return Out;
}

void expectSamePairs(const std::vector<std::pair<double, uint32_t>> &Got,
                     const std::vector<std::pair<double, uint32_t>> &Want) {
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I) {
    SCOPED_TRACE("neighbour " + std::to_string(I));
    EXPECT_EQ(Got[I].second, Want[I].second);
    EXPECT_EQ(bits(Got[I].first), bits(Want[I].first));
  }
}

/// Serial reference of kMeansMatrix: the documented algorithm written as
/// plain loops with no ThreadPool involvement. Consumes its own Rng with
/// the same draw sequence, so a parallel kMeansMatrix run under any
/// PROM_THREADS must reproduce it bit for bit.
KMeansMatrixResult serialKMeansMatrix(const FeatureMatrix &Rows, size_t Begin,
                                      size_t End, size_t K, Rng &R,
                                      size_t MaxIters = 8,
                                      size_t SampleCap = 16384) {
  size_t N = End - Begin;
  size_t Dim = Rows.dim();
  K = std::max<size_t>(1, std::min(K, N));

  size_t SampleN = std::min(N, SampleCap);
  std::vector<size_t> Sample(SampleN);
  for (size_t I = 0; I < SampleN; ++I)
    Sample[I] = Begin + I * N / SampleN;

  KMeansMatrixResult Res;
  Res.Centroids.reset(K, Dim);
  FeatureMatrix &Cent = Res.Centroids;

  Cent.setRow(0, Rows.rowPtr(Sample[R.bounded(SampleN)]));
  std::vector<double> MinDistSq(SampleN, std::numeric_limits<double>::max());
  for (size_t C = 1; C < K; ++C) {
    for (size_t I = 0; I < SampleN; ++I)
      MinDistSq[I] = std::min(
          MinDistSq[I],
          kernels::l2Sq(Rows.rowPtr(Sample[I]), Cent.rowPtr(C - 1), Dim));
    Cent.setRow(C, Rows.rowPtr(Sample[R.weightedIndex(MinDistSq)]));
  }

  auto NearestRow = [&](const double *Row) {
    std::vector<double> DistBuf(K);
    kernels::l2Sq1xN(Row, Cent.data(), K, Dim, Cent.stride(),
                     DistBuf.data());
    size_t Best = 0;
    for (size_t C = 1; C < K; ++C)
      if (DistBuf[C] < DistBuf[Best])
        Best = C;
    return std::pair<size_t, double>{Best, DistBuf[Best]};
  };

  std::vector<uint32_t> Assign(SampleN, 0);
  std::vector<double> AssignDistSq(SampleN, 0.0);
  for (size_t Iter = 0; Iter < MaxIters; ++Iter) {
    bool Changed = false;
    for (size_t I = 0; I < SampleN; ++I) {
      std::pair<size_t, double> Best = NearestRow(Rows.rowPtr(Sample[I]));
      AssignDistSq[I] = Best.second;
      if (Assign[I] != Best.first) {
        Assign[I] = static_cast<uint32_t>(Best.first);
        Changed = true;
      }
    }
    std::vector<double> Sums(K * Dim, 0.0);
    std::vector<size_t> Counts(K, 0);
    for (size_t I = 0; I < SampleN; ++I) {
      const double *Row = Rows.rowPtr(Sample[I]);
      for (size_t D = 0; D < Dim; ++D)
        Sums[Assign[I] * Dim + D] += Row[D];
      ++Counts[Assign[I]];
    }
    for (size_t C = 0; C < K; ++C)
      if (Counts[C] != 0)
        for (size_t D = 0; D < Dim; ++D)
          Cent.rowPtr(C)[D] =
              Sums[C * Dim + D] / static_cast<double>(Counts[C]);

    bool Reseeded = false;
    std::vector<uint8_t> Claimed(SampleN, 0);
    for (size_t C = 0; C < K; ++C) {
      if (Counts[C] != 0)
        continue;
      size_t Farthest = SampleN;
      double FarDist = -1.0;
      for (size_t I = 0; I < SampleN; ++I) {
        if (Claimed[I] || Counts[Assign[I]] <= 1)
          continue;
        if (AssignDistSq[I] > FarDist) {
          FarDist = AssignDistSq[I];
          Farthest = I;
        }
      }
      if (Farthest == SampleN)
        continue;
      Claimed[Farthest] = 1;
      Cent.setRow(C, Rows.rowPtr(Sample[Farthest]));
      Reseeded = true;
    }
    if (!Changed && !Reseeded && Iter > 0)
      break;
  }

  Res.Assignments.assign(N, 0);
  Res.AssignDistSq.assign(N, 0.0);
  for (size_t I = 0; I < N; ++I) {
    std::pair<size_t, double> Best = NearestRow(Rows.rowPtr(Begin + I));
    Res.Assignments[I] = static_cast<uint32_t>(Best.first);
    Res.AssignDistSq[I] = Best.second;
  }
  Res.Inertia = 0.0;
  for (size_t I = 0; I < N; ++I)
    Res.Inertia += Res.AssignDistSq[I];
  return Res;
}

} // namespace

//===----------------------------------------------------------------------===//
// kMeansMatrix: thread-count-invariant quantizer
//===----------------------------------------------------------------------===//

TEST(KMeansMatrixTest, MatchesSerialReferenceBitForBit) {
  // The binary runs under PROM_THREADS=1 and PROM_THREADS=4 (ctest
  // registrations): the serial reference never touches the pool, so this
  // comparison pins the parallel implementation across thread counts.
  for (uint64_t Seed : {11u, 202u, 3003u}) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    Rng RData(Seed);
    FeatureMatrix Rows = randomRows(700, 9, RData);
    Rng RLive(Seed * 7 + 1), RRef(Seed * 7 + 1);
    KMeansMatrixResult Live = kMeansMatrix(Rows, 0, Rows.rows(), 12, RLive);
    KMeansMatrixResult Ref =
        serialKMeansMatrix(Rows, 0, Rows.rows(), 12, RRef);

    ASSERT_EQ(Live.Centroids.rows(), Ref.Centroids.rows());
    for (size_t C = 0; C < Ref.Centroids.rows(); ++C)
      for (size_t D = 0; D < Rows.dim(); ++D)
        ASSERT_EQ(bits(Live.Centroids.rowPtr(C)[D]),
                  bits(Ref.Centroids.rowPtr(C)[D]))
            << "centroid " << C << " dim " << D;
    ASSERT_EQ(Live.Assignments, Ref.Assignments);
    for (size_t I = 0; I < Ref.AssignDistSq.size(); ++I)
      ASSERT_EQ(bits(Live.AssignDistSq[I]), bits(Ref.AssignDistSq[I]));
    EXPECT_EQ(bits(Live.Inertia), bits(Ref.Inertia));
  }
}

TEST(KMeansMatrixTest, SubRangeAndClamping) {
  Rng R(5);
  FeatureMatrix Rows = randomRows(64, 4, R);
  // K larger than the range clamps; a sub-range only touches its rows.
  Rng RK(9);
  KMeansMatrixResult Res = kMeansMatrix(Rows, 10, 20, 50, RK);
  EXPECT_EQ(Res.Centroids.rows(), 10u);
  EXPECT_EQ(Res.Assignments.size(), 10u);
  for (uint32_t A : Res.Assignments)
    EXPECT_LT(A, 10u);
  // Every row sits on its own centroid: zero inertia.
  EXPECT_EQ(Res.Inertia, 0.0);
}

TEST(KMeansMatrixTest, SeparatesObviousClusters) {
  Rng R(42);
  FeatureMatrix Rows(120, 3);
  for (size_t I = 0; I < 120; ++I) {
    double Base = static_cast<double>(I % 3) * 50.0;
    for (size_t D = 0; D < 3; ++D)
      Rows.rowPtr(I)[D] = Base + R.gaussian(0.0, 0.2);
  }
  Rng RK(7);
  KMeansMatrixResult Res = kMeansMatrix(Rows, 0, 120, 3, RK);
  for (size_t I = 0; I < 120; ++I)
    EXPECT_EQ(Res.Assignments[I], Res.Assignments[I % 3]);
}

//===----------------------------------------------------------------------===//
// ClusterIndex: lossless pruned k-NN
//===----------------------------------------------------------------------===//

TEST(ClusterIndexTest, NearestPrunedMatchesFullScanBitForBit) {
  for (uint64_t Seed : {3u, 77u, 912u}) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    Rng R(Seed);
    FeatureMatrix Rows = randomRows(2500, 8, R);
    ClusterIndex Index;
    Index.build(Rows, 0, Rows.rows(), /*NumCentroids=*/0, Seed);
    ASSERT_TRUE(Index.valid());

    for (size_t K : {size_t(1), size_t(7), size_t(100), size_t(2500)}) {
      SCOPED_TRACE("K " + std::to_string(K));
      for (int Q = 0; Q < 8; ++Q) {
        SCOPED_TRACE("query " + std::to_string(Q));
        std::vector<double> Query(Rows.dim());
        for (double &V : Query)
          V = R.gaussian(0.0, 4.0);
        expectSamePairs(Index.nearestPruned(Query.data(), K),
                        fullScanNearest(Rows, Query.data(), K));
      }
    }
  }
}

TEST(ClusterIndexTest, TieHeavyAndDuplicateRowsStayExact) {
  Rng R(1234);
  FeatureMatrix Rows = gridRows(1800, 5, R);
  ClusterIndex Index;
  Index.build(Rows, 0, Rows.rows(), 24, 99);
  ASSERT_TRUE(Index.valid());

  for (int Q = 0; Q < 10; ++Q) {
    SCOPED_TRACE("query " + std::to_string(Q));
    // Queries from the same grid maximize exact distance ties; the
    // (dist, ascending id) tie-break must survive the pruning.
    std::vector<double> Query(Rows.dim());
    for (double &V : Query)
      V = static_cast<double>(R.bounded(3));
    expectSamePairs(Index.nearestPruned(Query.data(), 64),
                    fullScanNearest(Rows, Query.data(), 64));
  }
}

TEST(ClusterIndexTest, FullyDegenerateRowsReturnLowestIds) {
  // Every row identical: all distances tie, so the k-NN is ids 0..K-1.
  FeatureMatrix Rows(500, 6);
  for (size_t I = 0; I < 500; ++I)
    for (size_t D = 0; D < 6; ++D)
      Rows.rowPtr(I)[D] = 1.5;
  ClusterIndex Index;
  Index.build(Rows, 0, Rows.rows(), 0, 7);
  ASSERT_TRUE(Index.valid());

  std::vector<double> Query(6, -2.0);
  std::vector<std::pair<double, uint32_t>> Near =
      Index.nearestPruned(Query.data(), 5);
  ASSERT_EQ(Near.size(), 5u);
  for (uint32_t I = 0; I < 5; ++I)
    EXPECT_EQ(Near[I].second, I);
  expectSamePairs(Near, fullScanNearest(Rows, Query.data(), 5));
}

TEST(ClusterIndexTest, CoversSubRangeWithOriginalRowIds) {
  Rng R(55);
  FeatureMatrix Rows = randomRows(1000, 4, R);
  ClusterIndex Index;
  Index.build(Rows, 300, 900, 0, 1);
  ASSERT_TRUE(Index.valid());
  EXPECT_EQ(Index.beginRow(), 300u);
  EXPECT_EQ(Index.endRow(), 900u);
  EXPECT_EQ(Index.coveredRows(), 600u);

  std::vector<double> Query(Rows.dim(), 0.25);
  std::vector<std::pair<double, uint32_t>> Near =
      Index.nearestPruned(Query.data(), 20);
  ASSERT_EQ(Near.size(), 20u);
  for (const std::pair<double, uint32_t> &P : Near) {
    EXPECT_GE(P.second, 300u);
    EXPECT_LT(P.second, 900u);
  }
  // Oracle over the covered range only.
  std::vector<double> DistSq(600);
  kernels::l2Sq1xN(Query.data(), Rows.rowPtr(300), 600, Rows.dim(),
                   Rows.stride(), DistSq.data());
  std::vector<size_t> Sel = selectNearest(DistSq.data(), 600, 20);
  for (size_t I = 0; I < Sel.size(); ++I) {
    EXPECT_EQ(Near[I].second, static_cast<uint32_t>(Sel[I] + 300));
    EXPECT_EQ(bits(Near[I].first), bits(DistSq[Sel[I]]));
  }
}

TEST(ClusterIndexTest, PruningActuallySkipsListsOnClusteredData) {
  // Well-separated blobs: a small-k query near one blob must not scan
  // most lists — this guards the perf claim, not just correctness.
  Rng R(8);
  FeatureMatrix Rows(4096, 6);
  for (size_t I = 0; I < Rows.rows(); ++I) {
    double Base = static_cast<double>(I % 16) * 100.0;
    for (size_t D = 0; D < 6; ++D)
      Rows.rowPtr(I)[D] = Base + R.gaussian(0.0, 0.5);
  }
  ClusterIndex Index;
  Index.build(Rows, 0, Rows.rows(), 64, 3);
  ASSERT_TRUE(Index.valid());

  std::vector<double> Query(6, 100.0); // Near blob 1.
  ClusterScanStats Stats;
  std::vector<std::pair<double, uint32_t>> Near =
      Index.nearestPruned(Query.data(), 10, &Stats);
  expectSamePairs(Near, fullScanNearest(Rows, Query.data(), 10));
  EXPECT_EQ(Stats.ListsTotal, Index.numLists());
  EXPECT_LT(Stats.ListsScanned, Stats.ListsTotal / 2);
  EXPECT_LT(Stats.RowsScanned, Stats.RowsTotal / 2);
}

//===----------------------------------------------------------------------===//
// nearestPrunedBatch: batch-native pruned k-NN
//===----------------------------------------------------------------------===//

TEST(ClusterIndexTest, NearestPrunedBatchMatchesSerialBitForBit) {
  // The binary runs under PROM_THREADS=1/4 and PROM_KERNELS=scalar (ctest
  // registrations), so this also pins the batch fan-out across thread
  // counts and ISAs. Stats equality is part of the contract: the batch
  // walk must make exactly the serial walk's pruning decisions.
  for (uint64_t Seed : {4u, 81u, 733u}) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    Rng R(Seed);
    FeatureMatrix Rows = randomRows(2500, 8, R);
    ClusterIndex Index;
    Index.build(Rows, 0, Rows.rows(), /*NumCentroids=*/0, Seed);
    ASSERT_TRUE(Index.valid());

    for (size_t NumQ : {size_t(1), size_t(7), size_t(64)}) {
      SCOPED_TRACE("batch " + std::to_string(NumQ));
      FeatureMatrix Queries = randomRows(NumQ, Rows.dim(), R);
      for (size_t K : {size_t(1), size_t(7), size_t(2500)}) {
        SCOPED_TRACE("K " + std::to_string(K));
        std::vector<ClusterScanStats> BatchStats;
        std::vector<std::vector<std::pair<double, uint32_t>>> Batch =
            Index.nearestPrunedBatch(Queries, K, &BatchStats);
        ASSERT_EQ(Batch.size(), NumQ);
        ASSERT_EQ(BatchStats.size(), NumQ);
        for (size_t Q = 0; Q < NumQ; ++Q) {
          SCOPED_TRACE("query " + std::to_string(Q));
          ClusterScanStats Serial;
          expectSamePairs(Batch[Q],
                          Index.nearestPruned(Queries.rowPtr(Q), K, &Serial));
          expectSamePairs(Batch[Q],
                          fullScanNearest(Rows, Queries.rowPtr(Q), K));
          EXPECT_EQ(BatchStats[Q].ListsTotal, Serial.ListsTotal);
          EXPECT_EQ(BatchStats[Q].ListsScanned, Serial.ListsScanned);
          EXPECT_EQ(BatchStats[Q].RowsTotal, Serial.RowsTotal);
          EXPECT_EQ(BatchStats[Q].RowsScanned, Serial.RowsScanned);
        }
      }
    }
  }
}

TEST(ClusterIndexTest, NearestPrunedBatchTieHeavyGridStaysExact) {
  Rng R(4321);
  FeatureMatrix Rows = gridRows(1800, 5, R);
  ClusterIndex Index;
  Index.build(Rows, 0, Rows.rows(), 24, 99);
  ASSERT_TRUE(Index.valid());

  // Queries from the same grid maximize exact distance ties; the
  // (dist, ascending id) tie-break must survive both the pruning and the
  // batch fan-out.
  FeatureMatrix Queries = gridRows(13, Rows.dim(), R);
  std::vector<std::vector<std::pair<double, uint32_t>>> Batch =
      Index.nearestPrunedBatch(Queries, 64);
  ASSERT_EQ(Batch.size(), Queries.rows());
  for (size_t Q = 0; Q < Queries.rows(); ++Q) {
    SCOPED_TRACE("query " + std::to_string(Q));
    expectSamePairs(Batch[Q], fullScanNearest(Rows, Queries.rowPtr(Q), 64));
  }
}

TEST(ClusterIndexTest, NearestPrunedBatchEmptyAndDegenerateBatches) {
  Rng R(17);
  FeatureMatrix Rows = randomRows(600, 4, R);
  ClusterIndex Index;
  Index.build(Rows, 0, Rows.rows(), 0, 5);
  ASSERT_TRUE(Index.valid());

  // Empty batch: no queries, no stats, no crash.
  FeatureMatrix NoQueries(0, Rows.dim());
  std::vector<ClusterScanStats> Stats;
  EXPECT_TRUE(Index.nearestPrunedBatch(NoQueries, 5, &Stats).empty());
  EXPECT_TRUE(Stats.empty());

  // K = 0 yields empty per-query results; K > N clamps to N.
  FeatureMatrix Queries = randomRows(3, Rows.dim(), R);
  for (const auto &Near : Index.nearestPrunedBatch(Queries, 0))
    EXPECT_TRUE(Near.empty());
  for (const auto &Near : Index.nearestPrunedBatch(Queries, 10000))
    EXPECT_EQ(Near.size(), Rows.rows());

  // Fully degenerate batch: every query identical to every (identical)
  // row — all ties, every query must get ids 0..K-1.
  FeatureMatrix Flat(400, 4);
  for (size_t I = 0; I < Flat.rows(); ++I)
    for (size_t D = 0; D < 4; ++D)
      Flat.rowPtr(I)[D] = 2.5;
  ClusterIndex FlatIndex;
  FlatIndex.build(Flat, 0, Flat.rows(), 0, 11);
  FeatureMatrix FlatQueries(5, 4);
  for (size_t Q = 0; Q < 5; ++Q)
    for (size_t D = 0; D < 4; ++D)
      FlatQueries.rowPtr(Q)[D] = 2.5;
  for (const auto &Near : FlatIndex.nearestPrunedBatch(FlatQueries, 7)) {
    ASSERT_EQ(Near.size(), 7u);
    for (uint32_t I = 0; I < 7; ++I)
      EXPECT_EQ(Near[I].second, I);
  }
}

TEST(ClusterIndexTest, ClusterScanStatsMergeSumsCounters) {
  ClusterScanStats A;
  A.ListsTotal = 10;
  A.ListsScanned = 3;
  A.RowsTotal = 1000;
  A.RowsScanned = 120;
  ClusterScanStats B;
  B.ListsTotal = 8;
  B.ListsScanned = 2;
  B.RowsTotal = 500;
  B.RowsScanned = 40;
  A += B;
  EXPECT_EQ(A.ListsTotal, 18u);
  EXPECT_EQ(A.ListsScanned, 5u);
  EXPECT_EQ(A.RowsTotal, 1500u);
  EXPECT_EQ(A.RowsScanned, 160u);
}

TEST(ClusterIndexTest, ClearAndRebuild) {
  Rng R(21);
  FeatureMatrix Rows = randomRows(300, 3, R);
  ClusterIndex Index;
  EXPECT_FALSE(Index.valid());
  Index.build(Rows, 0, Rows.rows(), 0, 1);
  EXPECT_TRUE(Index.valid());
  Index.clear();
  EXPECT_FALSE(Index.valid());
  EXPECT_EQ(Index.coveredRows(), 0u);
  Index.build(Rows, 0, 100, 0, 2);
  EXPECT_TRUE(Index.valid());
  EXPECT_EQ(Index.coveredRows(), 100u);
  std::vector<double> Query(Rows.dim(), 0.0);
  EXPECT_EQ(Index.nearestPruned(Query.data(), 3).size(), 3u);
}
