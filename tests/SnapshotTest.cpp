//===- tests/SnapshotTest.cpp - detector snapshot round-trips -----------------===//
//
// Part of the PROM reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// saveSnapshot()/loadSnapshot() must make restarts free: a detector
// restored from disk produces bit-identical verdicts to the one that
// saved, on a fixed probe set, with exact floating-point equality. The
// loader must also reject — without touching the detector — anything that
// is not a pristine snapshot: missing files, truncations, flipped bytes,
// wrong magic, and snapshots of the wrong detector kind.
//
//===----------------------------------------------------------------------===//

#include "core/Detector.h"
#include "data/Scaler.h"
#include "data/Split.h"
#include "ml/Linear.h"
#include "ml/Mlp.h"
#include "support/Serialize.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace prom;
using prom::testing::gaussianBlobs;
using prom::testing::linearRegression;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

std::vector<char> slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(In),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string &Path, const std::vector<char> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

void expectSameVerdict(const Verdict &A, const Verdict &B, size_t Index) {
  SCOPED_TRACE("sample " + std::to_string(Index));
  EXPECT_EQ(A.Predicted, B.Predicted);
  EXPECT_EQ(A.Drifted, B.Drifted);
  EXPECT_EQ(A.VotesToFlag, B.VotesToFlag);
  ASSERT_EQ(A.Experts.size(), B.Experts.size());
  for (size_t E = 0; E < A.Experts.size(); ++E) {
    EXPECT_EQ(A.Experts[E].Credibility, B.Experts[E].Credibility);
    EXPECT_EQ(A.Experts[E].Confidence, B.Experts[E].Confidence);
    EXPECT_EQ(A.Experts[E].PredictionSetSize,
              B.Experts[E].PredictionSetSize);
    EXPECT_EQ(A.Experts[E].FlagDrift, B.Experts[E].FlagDrift);
  }
}

/// Calibrated classifier + probe set shared by the classifier tests.
struct ClassifierFixture {
  support::Rng R{91};
  data::Dataset Train, Calib, Probes;
  ml::MlpClassifier Model;

  ClassifierFixture() {
    data::Dataset Full = gaussianBlobs(3, 260, 4.0, 0.8, R);
    auto Split = data::calibrationPartition(Full, R, 0.4);
    Train = std::move(Split.first);
    Calib = std::move(Split.second);
    Model.fit(Train, R);
    Probes = gaussianBlobs(3, 20, 4.0, 0.8, R);
    for (int I = 0; I < 20; ++I) {
      data::Sample Novel;
      Novel.Features = {R.gaussian(0.0, 0.7), R.gaussian(0.0, 0.7)};
      Novel.Label = 0;
      Probes.add(std::move(Novel));
    }
  }
};

ClassifierFixture &classifierFixture() {
  static ClassifierFixture F;
  return F;
}

} // namespace

TEST(SnapshotTest, ClassifierRoundTripBitIdentical) {
  ClassifierFixture &F = classifierFixture();

  PromConfig Cfg;
  Cfg.Epsilon = 0.15;
  Cfg.CredThreshold = 0.3;
  Cfg.NumShards = 4;
  PromClassifier Saved(F.Model, Cfg);
  Saved.calibrate(F.Calib);
  std::vector<Verdict> Expected = Saved.assessBatch(F.Probes);

  std::string Path = tempPath("classifier.promsnap");
  ASSERT_TRUE(Saved.saveSnapshot(Path));

  // A fresh wrapper around the same model, default config: everything
  // detector-side must come from the snapshot.
  PromClassifier Loaded(F.Model);
  ASSERT_TRUE(Loaded.loadSnapshot(Path));
  EXPECT_EQ(Loaded.temperature(), Saved.temperature());
  EXPECT_EQ(Loaded.config().Epsilon, 0.15);
  EXPECT_EQ(Loaded.config().CredThreshold, 0.3);
  EXPECT_EQ(Loaded.numExperts(), Saved.numExperts());
  EXPECT_EQ(Loaded.numShards(), Saved.numShards());

  std::vector<Verdict> Restored = Loaded.assessBatch(F.Probes);
  ASSERT_EQ(Restored.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I) {
    expectSameVerdict(Expected[I], Restored[I], I);
    for (size_t C = 0; C < Expected[I].Probabilities.size(); ++C)
      EXPECT_EQ(Expected[I].Probabilities[C], Restored[I].Probabilities[C]);
  }
  std::remove(Path.c_str());
}

TEST(SnapshotTest, RegressorRoundTripBitIdentical) {
  support::Rng R(92);
  data::Dataset Train = linearRegression(300, 0.1, R);
  data::Dataset Calib = linearRegression(140, 0.1, R);
  ml::MlpRegressor Model;
  Model.fit(Train, R);

  PromConfig Cfg;
  Cfg.FixedClusters = 4;
  PromRegressor Saved(Model, Cfg);
  support::Rng CalR(7);
  Saved.calibrate(Calib, CalR);

  data::Dataset Probes = linearRegression(60, 0.1, R);
  std::vector<RegressionVerdict> Expected = Saved.assessBatch(Probes);

  std::string Path = tempPath("regressor.promsnap");
  ASSERT_TRUE(Saved.saveSnapshot(Path));

  PromRegressor Loaded(Model);
  ASSERT_TRUE(Loaded.loadSnapshot(Path));
  EXPECT_EQ(Loaded.numClusters(), Saved.numClusters());

  std::vector<RegressionVerdict> Restored = Loaded.assessBatch(Probes);
  ASSERT_EQ(Restored.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I) {
    SCOPED_TRACE("sample " + std::to_string(I));
    EXPECT_EQ(Expected[I].Predicted, Restored[I].Predicted);
    EXPECT_EQ(Expected[I].Cluster, Restored[I].Cluster);
    EXPECT_EQ(Expected[I].Drifted, Restored[I].Drifted);
    EXPECT_EQ(Expected[I].VotesToFlag, Restored[I].VotesToFlag);
    ASSERT_EQ(Expected[I].Experts.size(), Restored[I].Experts.size());
    for (size_t E = 0; E < Expected[I].Experts.size(); ++E) {
      EXPECT_EQ(Expected[I].Experts[E].Credibility,
                Restored[I].Experts[E].Credibility);
      EXPECT_EQ(Expected[I].Experts[E].Confidence,
                Restored[I].Experts[E].Confidence);
    }
  }
  std::remove(Path.c_str());
}

TEST(SnapshotTest, ScalerStateRoundTrips) {
  ClassifierFixture &F = classifierFixture();

  data::StandardScaler Scaler;
  Scaler.fit(F.Train);

  PromClassifier Saved(F.Model);
  Saved.calibrate(F.Calib);
  std::string Path = tempPath("with_scaler.promsnap");
  ASSERT_TRUE(Saved.saveSnapshot(Path, &Scaler));

  PromClassifier Loaded(F.Model);
  data::StandardScaler Restored;
  ASSERT_TRUE(Loaded.loadSnapshot(Path, &Restored));
  ASSERT_TRUE(Restored.isFitted());
  ASSERT_EQ(Restored.means().size(), Scaler.means().size());
  for (size_t D = 0; D < Scaler.means().size(); ++D) {
    EXPECT_EQ(Restored.means()[D], Scaler.means()[D]);
    EXPECT_EQ(Restored.stddevs()[D], Scaler.stddevs()[D]);
  }
  std::remove(Path.c_str());
}

TEST(SnapshotTest, RejectsMissingShortCorruptAndWrongKind) {
  ClassifierFixture &F = classifierFixture();

  PromClassifier Saved(F.Model);
  Saved.calibrate(F.Calib);
  std::vector<Verdict> Expected = Saved.assessBatch(F.Probes);

  std::string Path = tempPath("pristine.promsnap");
  ASSERT_TRUE(Saved.saveSnapshot(Path));
  std::vector<char> Pristine = slurp(Path);
  ASSERT_GT(Pristine.size(), 64u);

  PromClassifier Victim(F.Model);
  Victim.calibrate(F.Calib);

  // Missing file.
  EXPECT_FALSE(Victim.loadSnapshot(tempPath("does_not_exist.promsnap")));

  // Truncations at several depths, including mid-header and mid-payload.
  std::string Mangled = tempPath("mangled.promsnap");
  for (size_t Keep : {size_t(0), size_t(4), size_t(15), Pristine.size() / 2,
                      Pristine.size() - 1}) {
    SCOPED_TRACE("truncated to " + std::to_string(Keep));
    spit(Mangled, std::vector<char>(Pristine.begin(),
                                    Pristine.begin() +
                                        static_cast<long>(Keep)));
    EXPECT_FALSE(Victim.loadSnapshot(Mangled));
  }

  // A flipped byte anywhere must fail the checksum.
  for (size_t Flip : {size_t(3), size_t(20), Pristine.size() / 2,
                      Pristine.size() - 3}) {
    SCOPED_TRACE("flipped byte " + std::to_string(Flip));
    std::vector<char> Bad = Pristine;
    Bad[Flip] = static_cast<char>(Bad[Flip] ^ 0x5a);
    spit(Mangled, Bad);
    EXPECT_FALSE(Victim.loadSnapshot(Mangled));
  }

  // Wrong magic.
  {
    std::vector<char> Bad = Pristine;
    Bad[0] = 'X';
    spit(Mangled, Bad);
    EXPECT_FALSE(Victim.loadSnapshot(Mangled));
  }

  // Every failed load above must have left the victim untouched.
  std::vector<Verdict> After = Victim.assessBatch(F.Probes);
  ASSERT_EQ(After.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    expectSameVerdict(Expected[I], After[I], I);

  std::remove(Path.c_str());
  std::remove(Mangled.c_str());
}

//===----------------------------------------------------------------------===//
// Snapshot rotation (generation files + `latest` pointer)
//===----------------------------------------------------------------------===//

namespace {

/// A fresh rotation directory under the test tmpdir.
std::string rotationDir(const std::string &Name) {
  std::string Dir = tempPath(Name);
  // Clear any leftovers from a previous run of the same test binary.
  for (uint64_t Gen : support::listSnapshotGenerations(Dir))
    std::remove((Dir + "/" + support::snapshotGenerationFile(Gen)).c_str());
  std::remove((Dir + "/latest").c_str());
  EXPECT_TRUE(support::ensureDirectory(Dir));
  return Dir;
}

/// Writes a minimal valid (checksummed) generation file.
void writeGeneration(const std::string &Dir, uint64_t Gen) {
  support::ByteWriter W;
  W.writeU64(Gen); // Payload content is irrelevant to rotation.
  ASSERT_TRUE(
      W.writeFile(Dir + "/" + support::snapshotGenerationFile(Gen)));
}

} // namespace

TEST(SnapshotTest, RotationCrashBeforePointerCommitServesOldGeneration) {
  ClassifierFixture &F = classifierFixture();
  std::string Dir = rotationDir("rotation_crash");

  PromClassifier Saved(F.Model);
  Saved.calibrate(F.Calib);

  // Generation 1 fully committed.
  ASSERT_TRUE(Saved.saveSnapshot(
      Dir + "/" + support::snapshotGenerationFile(1)));
  ASSERT_TRUE(support::commitLatestPointer(Dir, 1));
  EXPECT_EQ(support::latestPointerGeneration(Dir), 1u);

  // Generation 2 written but the process "crashed" before the pointer
  // update: the committed generation 1 must still be served.
  ASSERT_TRUE(Saved.saveSnapshot(
      Dir + "/" + support::snapshotGenerationFile(2)));
  EXPECT_EQ(support::resolveLatestSnapshot(Dir),
            Dir + "/" + support::snapshotGenerationFile(1));

  // Pointer gone stale (its generation corrupted on disk): resolution
  // falls back to the newest generation that still loads — generation 2.
  {
    std::string Gen1 = Dir + "/" + support::snapshotGenerationFile(1);
    std::vector<char> Bytes = slurp(Gen1);
    ASSERT_GT(Bytes.size(), 16u);
    Bytes[Bytes.size() / 2] ^= 0x5a;
    spit(Gen1, Bytes);
  }
  std::string Resolved = support::resolveLatestSnapshot(Dir);
  EXPECT_EQ(Resolved, Dir + "/" + support::snapshotGenerationFile(2));

  // And the fallback is actually loadable into a serving detector.
  PromClassifier Restored(F.Model);
  EXPECT_TRUE(Restored.loadSnapshot(Resolved));
  EXPECT_EQ(Restored.calibrationSize(), Saved.calibrationSize());

  // Nothing valid left at all: resolution reports none rather than
  // handing a corrupt path to the loader.
  std::remove(Resolved.c_str());
  EXPECT_EQ(support::resolveLatestSnapshot(Dir), "");
}

TEST(SnapshotTest, RotationPruneNeverDeletesPointedGeneration) {
  std::string Dir = rotationDir("rotation_prune");

  for (uint64_t Gen = 1; Gen <= 5; ++Gen)
    writeGeneration(Dir, Gen);
  // The pointer still names an old generation (e.g. the newer writes were
  // never committed); pruning must keep it alive alongside the newest.
  ASSERT_TRUE(support::commitLatestPointer(Dir, 2));

  size_t Removed = support::pruneSnapshotGenerations(Dir, /*KeepCount=*/2);
  EXPECT_EQ(Removed, 2u); // 1 and 3 go; 2 (pointed), 4, 5 stay.
  std::vector<uint64_t> Left = support::listSnapshotGenerations(Dir);
  ASSERT_EQ(Left.size(), 3u);
  EXPECT_EQ(Left[0], 2u);
  EXPECT_EQ(Left[1], 4u);
  EXPECT_EQ(Left[2], 5u);
  EXPECT_EQ(support::resolveLatestSnapshot(Dir),
            Dir + "/" + support::snapshotGenerationFile(2));

  // Once a newer generation is committed, the old one becomes prunable.
  ASSERT_TRUE(support::commitLatestPointer(Dir, 5));
  Removed = support::pruneSnapshotGenerations(Dir, /*KeepCount=*/1);
  EXPECT_EQ(Removed, 2u); // 2 and 4 go.
  Left = support::listSnapshotGenerations(Dir);
  ASSERT_EQ(Left.size(), 1u);
  EXPECT_EQ(Left[0], 5u);
}

TEST(SnapshotTest, WrongKindRejected) {
  ClassifierFixture &F = classifierFixture();
  PromClassifier Saved(F.Model);
  Saved.calibrate(F.Calib);
  std::string Path = tempPath("kind.promsnap");
  ASSERT_TRUE(Saved.saveSnapshot(Path));

  support::Rng R(5);
  data::Dataset RTrain = linearRegression(200, 0.1, R);
  data::Dataset RCalib = linearRegression(80, 0.1, R);
  ml::MlpRegressor RModel;
  RModel.fit(RTrain, R);
  PromRegressor Reg(RModel);
  EXPECT_FALSE(Reg.loadSnapshot(Path));
  std::remove(Path.c_str());
}
